#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/table.h"
#include "table/value.h"

namespace autoem {
namespace {

// ---- Value -----------------------------------------------------------------

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(std::string("x")).is_string());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value(42.0).ToString(), "42");     // integral numbers stay clean
  EXPECT_EQ(Value(3.5).ToString(), "3.5");
  EXPECT_EQ(Value("hello").ToString(), "hello");
}

TEST(ValueTest, ParseTyping) {
  EXPECT_TRUE(Value::Parse("").is_null());
  EXPECT_TRUE(Value::Parse("true").is_bool());
  EXPECT_TRUE(Value::Parse("FALSE").is_bool());
  EXPECT_TRUE(Value::Parse("3.25").is_number());
  EXPECT_TRUE(Value::Parse("-17").is_number());
  EXPECT_TRUE(Value::Parse("ab-1234").is_string());
  EXPECT_TRUE(Value::Parse("12 main st").is_string());
}

TEST(ValueTest, ParseEmbeddedNulStaysAString) {
  // Fuzzer-found: "1\0junk" used to parse as the number 1 because the
  // full-consumption check compared against '\0' through c_str(). A cell
  // with an embedded NUL is a string, bytes intact.
  Value v = Value::Parse(std::string_view("1\0junk", 6));
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), std::string("1\0junk", 6));
  // A NUL alone is likewise a string (one byte), not the number 0.
  EXPECT_TRUE(Value::Parse(std::string_view("\0", 1)).is_string());
  // Plain numbers still parse as numbers.
  EXPECT_TRUE(Value::Parse("1").is_number());
}

TEST(ValueTest, ParseRoundTripsThroughToString) {
  for (const char* s : {"true", "42", "3.5", "hello world"}) {
    Value v = Value::Parse(s);
    EXPECT_EQ(Value::Parse(v.ToString()), v) << s;
  }
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(1.0), Value(1.0));
  EXPECT_FALSE(Value(1.0) == Value("1"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

// ---- Schema / Table ----------------------------------------------------------

TEST(SchemaTest, IndexOf) {
  Schema s({"name", "address", "city"});
  EXPECT_EQ(s.num_attributes(), 3u);
  EXPECT_EQ(s.IndexOf("address"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(TableTest, AppendChecksArity) {
  Table t("test", Schema({"a", "b"}));
  EXPECT_TRUE(t.Append(Record({Value(1.0), Value(2.0)})).ok());
  Status bad = t.Append(Record({Value(1.0)}));
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, CellAccess) {
  Table t("test", Schema({"a", "b"}));
  ASSERT_TRUE(t.Append(Record({Value("x"), Value(5.0)})).ok());
  EXPECT_EQ(t.cell(0, 0).AsString(), "x");
  EXPECT_DOUBLE_EQ(t.cell(0, 1).AsNumber(), 5.0);
}

TEST(PairSetTest, NumPositives) {
  PairSet ps;
  ps.pairs = {{0, 0, 1}, {1, 1, 0}, {2, 2, 1}, {3, 3, -1}};
  EXPECT_EQ(ps.NumPositives(), 2u);
}

// ---- CSV ------------------------------------------------------------------------

TEST(CsvTest, ParseBasic) {
  auto t = ParseCsv("a,b,c\n1,hello,true\n2,world,false\n", "t");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t->cell(0, 0).AsNumber(), 1.0);
  EXPECT_EQ(t->cell(1, 1).AsString(), "world");
  EXPECT_FALSE(t->cell(1, 2).AsBool());
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  auto t = ParseCsv("name,notes\n\"smith, john\",\"said \"\"hi\"\"\"\n", "t");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->cell(0, 0).AsString(), "smith, john");
  EXPECT_EQ(t->cell(0, 1).AsString(), "said \"hi\"");
}

TEST(CsvTest, QuotedNewline) {
  auto t = ParseCsv("a,b\n\"line1\nline2\",x\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->cell(0, 0).AsString(), "line1\nline2");
}

TEST(CsvTest, CrLfTolerated) {
  auto t = ParseCsv("a,b\r\n1,2\r\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
}

// A '\r' not followed by '\n' is cell data, not a line-ending artifact.
// (A previous parser revision dropped every bare '\r', silently turning
// "x\ry" into "xy".)
TEST(CsvTest, BareCarriageReturnPreservedInCell) {
  auto t = ParseCsv("a,b\nx\ry,2\n", "t");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->cell(0, 0).AsString(), "x\ry");
  EXPECT_DOUBLE_EQ(t->cell(0, 1).AsNumber(), 2.0);
}

TEST(CsvTest, BareCarriageReturnAndCrLfMixed) {
  auto t = ParseCsv("a,b\r\n1,x\ry\r\n", "t");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->cell(0, 1).AsString(), "x\ry");
}

TEST(CsvTest, EmptyTrailingFieldKept) {
  auto t = ParseCsv("a,b,c\n1,2,\n", "t");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_TRUE(t->cell(0, 2).is_null());
}

// Property: any table whose cells draw from the CSV-hostile alphabet
// (bare '\r', '\n', '"', ',', empty cells) survives ToCsvString -> ParseCsv
// unchanged. Deterministic xorshift so failures replay.
TEST(CsvTest, RoundTripPropertyOverHostileAlphabet) {
  const char alphabet[] = {'x', 'y', 'z', 'q', ' ', '\r', '\n', '"', ','};
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 50; ++trial) {
    size_t cols = 1 + next() % 4;
    std::vector<std::string> names;
    for (size_t c = 0; c < cols; ++c) names.push_back("c" + std::to_string(c));
    Table t("prop", Schema(names));
    size_t rows = 1 + next() % 5;
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> cells;
      for (size_t c = 0; c < cols; ++c) {
        size_t len = next() % 6;  // 0 = empty cell (round-trips as null)
        std::string s;
        for (size_t k = 0; k < len; ++k) {
          s += alphabet[next() % sizeof(alphabet)];
        }
        cells.push_back(s.empty() ? Value::Null() : Value(s));
      }
      ASSERT_TRUE(t.Append(Record(std::move(cells))).ok());
    }
    auto back = ParseCsv(ToCsvString(t), "prop");
    ASSERT_TRUE(back.ok()) << "trial " << trial << ": "
                           << back.status().ToString();
    ASSERT_EQ(back->num_rows(), rows) << "trial " << trial;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(back->cell(r, c).ToString(), t.cell(r, c).ToString())
            << "trial " << trial << " cell (" << r << "," << c << ")";
      }
    }
  }
}

TEST(CsvTest, MissingTrailingNewline) {
  auto t = ParseCsv("a,b\n1,2", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST(CsvTest, EmptyCellsBecomeNull) {
  auto t = ParseCsv("a,b\n,x\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->cell(0, 0).is_null());
}

TEST(CsvTest, ArityMismatchRejected) {
  auto t = ParseCsv("a,b\n1,2,3\n", "t");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  auto t = ParseCsv("a\n\"oops\n", "t");
  EXPECT_FALSE(t.ok());
}

TEST(CsvTest, EmptyInputRejected) {
  auto t = ParseCsv("", "t");
  EXPECT_FALSE(t.ok());
}

TEST(CsvTest, RoundTripThroughString) {
  Table t("rt", Schema({"name", "price"}));
  ASSERT_TRUE(t.Append(Record({Value("a, \"b\""), Value(3.5)})).ok());
  ASSERT_TRUE(t.Append(Record({Value::Null(), Value(2.0)})).ok());
  std::string csv = ToCsvString(t);
  auto back = ParseCsv(csv, "rt");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->cell(0, 0).AsString(), "a, \"b\"");
  EXPECT_DOUBLE_EQ(back->cell(0, 1).AsNumber(), 3.5);
  EXPECT_TRUE(back->cell(1, 0).is_null());
}

TEST(CsvTest, FileRoundTrip) {
  Table t("f", Schema({"x"}));
  ASSERT_TRUE(t.Append(Record({Value("hello world")})).ok());
  std::string path = ::testing::TempDir() + "/autoem_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path, "f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cell(0, 0).AsString(), "hello world");
}

TEST(CsvTest, ReadMissingFileFails) {
  auto t = ReadCsv("/nonexistent/path.csv", "t");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace autoem
