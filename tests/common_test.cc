#include <gtest/gtest.h>

#include <atomic>
#include <set>

// GCC 12 emits a known -Wmaybe-uninitialized false positive for
// std::variant destruction at -O2 (GCC PR105593); it trips on the
// stack-constructed Result<int> in these tests.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "common/params.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace autoem {
namespace {

// ---- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Helper(bool fail) {
  if (fail) {
    AUTOEM_RETURN_IF_ERROR(Status::Internal("inner"));
  }
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

// ---- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, LogUniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.LogUniform(1e-4, 1e2);
    EXPECT_GE(v, 1e-4);
    EXPECT_LE(v, 1e2);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(4);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullPermutation) {
  Rng rng(5);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementOverdraw) {
  Rng rng(51);
  // Asking for more than n must return exactly n distinct indices.
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 50);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 5u);
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng fork = a.Fork();
  // Forked stream should not be identical to the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.UniformInt(0, 1 << 30) != fork.UniformInt(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

// ---- string_util ---------------------------------------------------------------

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("Hello World"), "hello world");
  EXPECT_EQ(ToLower("ABC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  new   york  city ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "new");
  EXPECT_EQ(parts[2], "city");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("classifier:rf:depth", "classifier:"));
  EXPECT_FALSE(StartsWith("clf", "classifier:"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

// ---- params -------------------------------------------------------------------

TEST(ParamValueTest, TypedAccessors) {
  EXPECT_EQ(ParamValue(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(ParamValue(2.5).AsDouble(), 2.5);
  EXPECT_EQ(ParamValue("gini").AsString(), "gini");
  EXPECT_TRUE(ParamValue(true).AsBool());
}

TEST(ParamValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(ParamValue(3).AsDouble(), 3.0);
  EXPECT_EQ(ParamValue(2.9).AsInt(), 2);
  EXPECT_TRUE(ParamValue("true").AsBool());
  EXPECT_FALSE(ParamValue("false").AsBool());
}

TEST(ParamValueTest, ToStringForms) {
  EXPECT_EQ(ParamValue(3).ToString(), "3");
  EXPECT_EQ(ParamValue("x").ToString(), "'x'");
  EXPECT_EQ(ParamValue(true).ToString(), "true");
}

TEST(ParamMapTest, GettersWithDefaults) {
  ParamMap m;
  m["a"] = 5;
  m["b"] = "hello";
  EXPECT_EQ(GetInt(m, "a", 0), 5);
  EXPECT_EQ(GetInt(m, "missing", 9), 9);
  EXPECT_EQ(GetString(m, "b", ""), "hello");
  EXPECT_DOUBLE_EQ(GetDouble(m, "missing", 1.5), 1.5);
  EXPECT_TRUE(GetBool(m, "missing", true));
}

// ---- thread pool -----------------------------------------------------------------

TEST(ThreadPoolTest, InlineModeRunsTasks) {
  ThreadPool pool(0);
  int counter = 0;
  pool.Submit([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(pool.num_threads(), 0u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&] { counter++; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 500);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds());
}

}  // namespace
}  // namespace autoem
