// Exercises the ThreadPool primitive and the Parallelism facade it sits
// behind: range edge cases, destruction draining, multi-producer stress,
// and re-entrancy (nested ParallelFor must degrade to serial, not deadlock).
#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/parallelism.h"

namespace autoem {
namespace {

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  for (size_t workers : {0u, 1u, 4u}) {
    ThreadPool pool(workers);
    std::atomic<int> calls{0};
    pool.ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(0, calls.load()) << workers << " workers";
  }
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  pool.ParallelFor(1, [&](size_t i) { hits[i]++; });
  EXPECT_EQ(1, hits[0]);
}

TEST(ThreadPoolTest, ParallelForOddSizedRanges) {
  // Sizes straddling the chunking logic: below, at, and well above the
  // chunk count for a 4-thread pool. Each index must be visited exactly
  // once (writes are disjoint, so plain ints suffice).
  ThreadPool pool(4);
  for (size_t n : {1u, 3u, 7u, 17u, 255u, 1001u}) {
    std::vector<int> hits(n, 0);
    pool.ParallelFor(n, [&](size_t i) { hits[i]++; });
    EXPECT_EQ(static_cast<int>(n),
              std::accumulate(hits.begin(), hits.end(), 0))
        << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(1, hits[i]) << "n=" << n << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, InlineModeRunsOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_EQ(0u, pool.num_threads());
  std::thread::id caller = std::this_thread::get_id();
  bool same_thread = false;
  pool.Submit([&] { same_thread = (std::this_thread::get_id() == caller); });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPoolTest, DestructionDrainsPendingTasks) {
  std::atomic<int> completed{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        completed.fetch_add(1);
      });
    }
    // No Wait(): the destructor itself must finish the backlog.
  }
  EXPECT_EQ(kTasks, completed.load());
}

TEST(ThreadPoolTest, WaitBlocksUntilQueueEmpty) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  constexpr int kTasks = 32;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&completed] {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      completed.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(kTasks, completed.load());
}

TEST(ThreadPoolTest, StressManySmallSubmitsFromMultipleProducers) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 2000;
  for (int round = 0; round < 3; ++round) {
    sum.store(0);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &sum, p] {
        for (int i = 0; i < kTasksPerProducer; ++i) {
          pool.Submit([&sum, p, i] { sum.fetch_add(p * kTasksPerProducer + i); });
        }
      });
    }
    for (auto& t : producers) t.join();
    pool.Wait();
    long expected = 0;
    for (int k = 0; k < kProducers * kTasksPerProducer; ++k) expected += k;
    EXPECT_EQ(expected, sum.load()) << "round " << round;
  }
}

TEST(ParallelismTest, ResolvedThreads) {
  EXPECT_EQ(1u, Parallelism::Serial().ResolvedThreads());
  EXPECT_TRUE(Parallelism::Serial().IsSerial());
  EXPECT_EQ(5u, Parallelism::Threads(5).ResolvedThreads());
  EXPECT_FALSE(Parallelism::Threads(5).IsSerial());
  // 0 = hardware concurrency, clamped to at least one worker.
  EXPECT_GE(Parallelism::Auto().ResolvedThreads(), 1u);
  EXPECT_EQ(1u, Parallelism::Threads(-3).ResolvedThreads());
}

TEST(ParallelismTest, FreeParallelForCoversAllIndices) {
  for (int threads : {1, 2, 8}) {
    std::vector<int> hits(123, 0);
    ParallelFor(Parallelism::Threads(threads), hits.size(),
                [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(1, hits[i]) << "threads=" << threads << " index " << i;
    }
  }
}

TEST(ParallelismTest, NestedParallelForDegradesToSerialWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  std::atomic<int> nested_flagged{0};
  EXPECT_FALSE(InParallelRegion());
  ParallelFor(Parallelism::Threads(4), 8, [&](size_t) {
    // Inside a pool worker the nested loop must run inline; re-submitting
    // to the same pool from a worker would deadlock Wait().
    if (InParallelRegion()) nested_flagged.fetch_add(1);
    ParallelFor(Parallelism::Threads(4), 16,
                [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(8 * 16, inner_total.load());
  // On a single-core host the pool may still exist; every iteration that
  // actually ran on a worker must have seen the region flag.
  EXPECT_EQ(8, nested_flagged.load());
}

}  // namespace
}  // namespace autoem
