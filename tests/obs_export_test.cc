// Tests for the obs v2 export surface: OpenMetrics text exposition
// conformance, the background MetricsFlusher (including a multi-thread
// hammer meant to run under tsan), ResourceProbe accounting, and the
// self-contained HTML run report.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "automl/config_io.h"
#include "automl/evaluator.h"
#include "io/atomic_file.h"
#include "obs/flusher.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/resource.h"

namespace autoem {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string MustRead(const std::string& path) {
  std::string bytes;
  Status st = io::ReadFileToString(path, &bytes);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return bytes;
}

// Extracts the sample value following `prefix ` on its exposition line.
double SampleValue(const std::string& exposition, const std::string& prefix) {
  size_t pos = exposition.find("\n" + prefix + " ");
  if (pos == std::string::npos && exposition.rfind(prefix + " ", 0) == 0) {
    pos = 0;
  } else if (pos != std::string::npos) {
    pos += 1;  // skip the leading newline
  } else {
    ADD_FAILURE() << "no sample line for " << prefix;
    return -1.0;
  }
  return std::strtod(exposition.c_str() + pos + prefix.size() + 1, nullptr);
}

// ---- OpenMetrics exposition -----------------------------------------------------

TEST(OpenMetricsTest, EmitsTypedFamiliesAndEof) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("omtest.requests")->Add(3);
  reg.GetGauge("omtest.best_f1")->Set(0.75);
  std::string om = reg.SnapshotOpenMetrics();

  EXPECT_NE(om.find("# TYPE omtest_requests counter\n"), std::string::npos);
  EXPECT_NE(om.find("omtest_requests_total 3\n"), std::string::npos);
  EXPECT_NE(om.find("# TYPE omtest_best_f1 gauge\n"), std::string::npos);
  EXPECT_DOUBLE_EQ(SampleValue(om, "omtest_best_f1"), 0.75);
  // The exposition must terminate with the EOF marker, nothing after it.
  ASSERT_GE(om.size(), 6u);
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram* hist =
      reg.GetHistogram("omtest.latency_ms", {1.0, 10.0});
  hist->Observe(0.5);    // <= 1
  hist->Observe(5.0);    // <= 10
  hist->Observe(100.0);  // overflow
  std::string om = reg.SnapshotOpenMetrics();

  EXPECT_NE(om.find("# TYPE omtest_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(SampleValue(om, "omtest_latency_ms_bucket{le=\"1\"}"),
                   1.0);
  EXPECT_DOUBLE_EQ(SampleValue(om, "omtest_latency_ms_bucket{le=\"10\"}"),
                   2.0);
  // Cumulative: the mandatory terminal +Inf bucket equals _count.
  EXPECT_DOUBLE_EQ(SampleValue(om, "omtest_latency_ms_bucket{le=\"+Inf\"}"),
                   3.0);
  EXPECT_DOUBLE_EQ(SampleValue(om, "omtest_latency_ms_count"), 3.0);
  EXPECT_DOUBLE_EQ(SampleValue(om, "omtest_latency_ms_sum"), 105.5);
  // +Inf is the *last* bucket row: no bucket line may follow it.
  size_t inf_pos = om.find("omtest_latency_ms_bucket{le=\"+Inf\"}");
  size_t sum_pos = om.find("omtest_latency_ms_sum");
  ASSERT_NE(inf_pos, std::string::npos);
  ASSERT_NE(sum_pos, std::string::npos);
  EXPECT_LT(inf_pos, sum_pos);
  EXPECT_EQ(om.find("omtest_latency_ms_bucket", inf_pos + 1), std::string::npos);
}

TEST(OpenMetricsTest, SanitizesNamesToLegalCharset) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("omtest.weird-name.v2/x")->Add();
  std::string om = reg.SnapshotOpenMetrics();
  // Dots, dashes, and slashes all map to '_'; the original spelling must
  // not appear anywhere in the exposition.
  EXPECT_NE(om.find("omtest_weird_name_v2_x_total 1\n"), std::string::npos);
  EXPECT_EQ(om.find("omtest.weird-name"), std::string::npos);
}

TEST(OpenMetricsTest, CountersAreMonotonicAcrossSnapshots) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("omtest.mono");
  c->Add(2);
  double first = SampleValue(reg.SnapshotOpenMetrics(), "omtest_mono_total");
  c->Add(5);
  double second = SampleValue(reg.SnapshotOpenMetrics(), "omtest_mono_total");
  EXPECT_EQ(first, 2.0);
  EXPECT_EQ(second, 7.0);
  EXPECT_GE(second, first) << "counter went backwards between snapshots";
}

TEST(OpenMetricsTest, JsonLineSnapshotIsSingleLine) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("omtest.line")->Add();
  std::string line = reg.SnapshotJsonLine(1.25);
  EXPECT_EQ(line.rfind("{\"ts_s\": 1.25,", 0), 0u) << line.substr(0, 40);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"counters\":"), std::string::npos);
  EXPECT_NE(line.find("\"omtest.line\": 1"), std::string::npos);
  EXPECT_EQ(line.back(), '}');
}

// ---- MetricsFlusher -------------------------------------------------------------

TEST(MetricsFlusherTest, JsonlSeriesGrowsAndFinalSnapshotIsWritten) {
  std::string path = TempPath("autoem_flush_series.jsonl");
  std::remove(path.c_str());
  obs::MetricsRegistry::Global().GetCounter("flushtest.ticks")->Add();
  {
    obs::MetricsFlusher::Options options;
    options.path = path;
    options.interval_seconds = 3600.0;  // manual flushes only
    options.format = "jsonl";
    obs::MetricsFlusher flusher(options);
    flusher.FlushNow();
    obs::MetricsRegistry::Global().GetCounter("flushtest.ticks")->Add();
    flusher.FlushNow();
    EXPECT_GE(flusher.flush_count(), 2u);
    // Destructor writes one more (the final, never-torn snapshot).
  }
  std::string series = MustRead(path);
  size_t lines = 0;
  size_t pos = 0;
  while ((pos = series.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_GE(lines, 3u);
  // Every record is one complete JSON object line with a timestamp.
  size_t start = 0;
  while (start < series.size()) {
    size_t end = series.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated final line";
    std::string line = series.substr(start, end - start);
    EXPECT_EQ(line.rfind("{\"ts_s\":", 0), 0u) << line.substr(0, 40);
    EXPECT_EQ(line.back(), '}');
    start = end + 1;
  }
  std::remove(path.c_str());
}

// The flusher exports its own health: a flush counter, a duration histogram
// (trailing by one flush — a flush cannot know its own duration), and a
// final-snapshot marker bumped by the destructor, so the last line of the
// series proves the shutdown flush ran.
TEST(MetricsFlusherTest, ExportsItsOwnHealthMetrics) {
  std::string path = TempPath("autoem_flush_health.jsonl");
  std::remove(path.c_str());
  {
    obs::MetricsFlusher::Options options;
    options.path = path;
    options.interval_seconds = 3600.0;  // manual flushes only
    options.format = "jsonl";
    obs::MetricsFlusher flusher(options);
    flusher.FlushNow();
    flusher.FlushNow();
    flusher.FlushNow();
  }
  std::string series = MustRead(path);
  // Every snapshot after the first carries the running flush counter.
  EXPECT_NE(series.find("\"obs.flush_count\""), std::string::npos);
  // The third flush observed the second's duration (trailing histogram), so
  // the histogram exists in the final snapshot.
  EXPECT_NE(series.find("\"obs.flush_duration_ms"), std::string::npos);
  // The destructor's final snapshot is marked.
  size_t last_line = series.rfind('\n', series.size() - 2);
  std::string final_line =
      series.substr(last_line == std::string::npos ? 0 : last_line + 1);
  EXPECT_NE(final_line.find("\"obs.flush_final\""), std::string::npos)
      << final_line.substr(0, 200);
  std::remove(path.c_str());
}

TEST(MetricsFlusherTest, OpenMetricsFormatEndsWithEof) {
  std::string path = TempPath("autoem_flush_om.txt");
  std::remove(path.c_str());
  obs::MetricsRegistry::Global().GetCounter("flushtest.om_ticks")->Add();
  {
    obs::MetricsFlusher::Options options;
    options.path = path;
    options.interval_seconds = 3600.0;
    options.format = "openmetrics";
    obs::MetricsFlusher flusher(options);
    flusher.FlushNow();
  }
  std::string om = MustRead(path);
  ASSERT_GE(om.size(), 6u);
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
  EXPECT_NE(om.find("# TYPE "), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsFlusherTest, BackgroundThreadFlushesOnItsOwn) {
  std::string path = TempPath("autoem_flush_bg.jsonl");
  std::remove(path.c_str());
  obs::MetricsFlusher::Options options;
  options.path = path;
  options.interval_seconds = 0.01;
  options.format = "jsonl";
  obs::MetricsFlusher flusher(options);
  for (int i = 0; i < 200 && flusher.flush_count() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(flusher.flush_count(), 2u) << "background flusher never fired";
  std::remove(path.c_str());
}

// The tsan workhorse: 8 writer threads hammer a histogram and a counter
// while snapshots are taken concurrently — the lock-free shard writes and
// the flusher's merge must not race.
TEST(MetricsFlusherTest, ConcurrentHammerWhileFlushing) {
  std::string path = TempPath("autoem_flush_hammer.jsonl");
  std::remove(path.c_str());
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram* hist = reg.GetHistogram("flushtest.hammer_ms");
  obs::Counter* counter = reg.GetCounter("flushtest.hammer_ops");

  obs::MetricsFlusher::Options options;
  options.path = path;
  options.interval_seconds = 0.01;  // keep the background thread busy too
  options.format = "jsonl";
  {
    obs::MetricsFlusher flusher(options);
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 20000;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          hist->Observe(static_cast<double>((t * 31 + i) % 1000));
          counter->Add();
        }
      });
    }
    for (int i = 0; i < 50; ++i) flusher.FlushNow();
    for (std::thread& w : writers) w.join();
    flusher.FlushNow();
  }
  // After all writers joined, the final (destructor) snapshot must account
  // for every operation.
  obs::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, 8u * 20000u);
  EXPECT_EQ(counter->Total(), 8u * 20000u);
  std::string series = MustRead(path);
  EXPECT_NE(series.find("\"flushtest.hammer_ops\": 160000"),
            std::string::npos);
  std::remove(path.c_str());
}

// ---- ResourceProbe --------------------------------------------------------------

TEST(ResourceProbeTest, DisabledProbeSamplesNothing) {
  obs::SetResourceProbesEnabled(false);
  obs::ResourceProbe probe;
  EXPECT_FALSE(probe.active());
  obs::ResourceUsage usage = probe.Take();
  EXPECT_FALSE(usage.sampled);
  EXPECT_EQ(usage.cpu_seconds, 0.0);
  EXPECT_EQ(usage.wall_seconds, 0.0);
  EXPECT_EQ(usage.peak_rss_delta_kb, 0);
  EXPECT_EQ(usage.allocs, 0u);
}

TEST(ResourceProbeTest, EnabledProbeMeasuresWorkAndAllocations) {
  obs::SetResourceProbesEnabled(true);
  obs::SetAllocationCounting(true);
  {
    obs::ResourceProbe probe;
    ASSERT_TRUE(probe.active());
    // Burn a little CPU and make heap allocations the hook must count.
    volatile double sink = 0.0;
    std::vector<std::string> strings;
    for (int i = 0; i < 2000; ++i) {
      strings.push_back(std::string(64, static_cast<char>('a' + i % 26)));
      for (int j = 0; j < 200; ++j) sink += j * 0.5;
    }
    obs::ResourceUsage usage = probe.Take();
    EXPECT_TRUE(usage.sampled);
    EXPECT_GE(usage.cpu_seconds, 0.0);
    EXPECT_GE(usage.wall_seconds, usage.cpu_seconds * 0.0);  // both sampled
    EXPECT_GT(usage.allocs, 0u);
  }
  obs::SetAllocationCounting(false);
  obs::SetResourceProbesEnabled(false);
}

TEST(ResourceProbeTest, RawSamplersReportPlausibleValues) {
  double cpu = obs::ThreadCpuSeconds();
  EXPECT_GE(cpu, 0.0);
  // Any live Linux process has a nonzero peak RSS.
  EXPECT_GT(obs::PeakRssKb(), 0);
}

// ---- run report -----------------------------------------------------------------

std::vector<EvalRecord> MakeTrajectory() {
  EvalRecord ok;
  ok.config["classifier:__choice__"] = std::string("random_forest");
  ok.config["classifier:random_forest:n_estimators"] = 64;
  ok.valid_f1 = 0.82;
  ok.test_f1 = 0.8;
  ok.fit_seconds = 0.4;
  ok.trial = 0;
  ok.elapsed_seconds = 1.5;
  ok.resources.sampled = true;
  ok.resources.cpu_seconds = 0.37;
  ok.resources.wall_seconds = 0.41;
  ok.resources.peak_rss_delta_kb = 2048;
  ok.resources.allocs = 123456;

  EvalRecord failed = ok;
  failed.trial = 1;
  failed.valid_f1 = 0.0;
  failed.test_f1 = -1.0;
  failed.failure = TrialFailure::kTimeout;
  failed.failure_message = "deadline exceeded";
  failed.config["classifier:random_forest:n_estimators"] = 512;
  return {ok, failed};
}

TEST(RunReportTest, CoversEveryTrialIncludingFailures) {
  std::vector<EvalRecord> trajectory = MakeTrajectory();
  obs::ReportInputs inputs;
  inputs.title = "unit-test run";
  inputs.trajectory_csv = SerializeTrajectoryCsv(trajectory);
  std::string html = obs::BuildRunReportHtml(inputs);

  ASSERT_FALSE(html.empty());
  // 100% trial coverage: each config hash from the CSV appears in the
  // embedded payload, completed and quarantined alike.
  char hash0[32], hash1[32];
  std::snprintf(hash0, sizeof(hash0), "%016llx",
                static_cast<unsigned long long>(
                    ConfigurationHash(trajectory[0].config)));
  std::snprintf(hash1, sizeof(hash1), "%016llx",
                static_cast<unsigned long long>(
                    ConfigurationHash(trajectory[1].config)));
  EXPECT_NE(html.find(hash0), std::string::npos);
  EXPECT_NE(html.find(hash1), std::string::npos);
  EXPECT_NE(html.find("timeout"), std::string::npos);
  EXPECT_NE(html.find("unit-test run"), std::string::npos);
}

TEST(RunReportTest, IsSelfContained) {
  obs::ReportInputs inputs;
  inputs.trajectory_csv = SerializeTrajectoryCsv(MakeTrajectory());
  inputs.metrics_text =
      obs::MetricsRegistry::Global().SnapshotJsonLine(0.5) + "\n" +
      obs::MetricsRegistry::Global().SnapshotJsonLine(1.0) + "\n";
  inputs.trace_json =
      "[\n{\"name\":\"automl.trial\",\"cat\":\"autoem\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":1,\"ts\":10,\"dur\":250}\n]\n";
  std::string html = obs::BuildRunReportHtml(inputs);

  // A single archivable file: no external fetches of any kind.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_NE(html.find("<canvas"), std::string::npos);
  EXPECT_NE(html.find("<script id=\"payload\" type=\"application/json\">"),
            std::string::npos);
  // The metrics series and trace summary made it into the payload.
  EXPECT_NE(html.find("\"metrics_series\""), std::string::npos);
  EXPECT_NE(html.find("automl.trial"), std::string::npos);
}

TEST(RunReportTest, EscapesHostileTitleAndPayload) {
  obs::ReportInputs inputs;
  inputs.title = "<script>alert(1)</script> & friends";
  inputs.trajectory_csv = SerializeTrajectoryCsv(MakeTrajectory());
  // A trace whose span name tries to break out of the payload script tag.
  inputs.trace_json =
      "[\n{\"name\":\"</script><b>x\",\"cat\":\"autoem\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":5}\n]\n";
  std::string html = obs::BuildRunReportHtml(inputs);
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
  // The only "</script>" occurrences are the document's own closing tags;
  // the payload's embedded one must be escaped to <\/script>.
  EXPECT_NE(html.find("<\\/script>"), std::string::npos);
}

TEST(RunReportTest, MinimalTrajectoryOnlyReportStillBuilds) {
  obs::ReportInputs inputs;
  inputs.trajectory_csv = SerializeTrajectoryCsv({});
  std::string html = obs::BuildRunReportHtml(inputs);
  ASSERT_FALSE(html.empty());
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

}  // namespace
}  // namespace autoem
