#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"
#include "preprocess/balancing.h"
#include "preprocess/feature_agglomeration.h"
#include "preprocess/feature_selection.h"
#include "preprocess/imputer.h"
#include "preprocess/pca.h"
#include "preprocess/scalers.h"

namespace autoem {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Matrix MakeMatrix(const std::vector<std::vector<double>>& rows) {
  Matrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

// ---- imputer ----------------------------------------------------------------

TEST(ImputerTest, MeanStrategy) {
  Matrix X = MakeMatrix({{1.0}, {kNaN}, {3.0}});
  SimpleImputer imp("mean");
  ASSERT_TRUE(imp.Fit(X, {1, 0, 1}).ok());
  Matrix out = imp.Apply(X);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 1.0);  // non-missing untouched
}

TEST(ImputerTest, MedianStrategy) {
  Matrix X = MakeMatrix({{1.0}, {kNaN}, {3.0}, {100.0}});
  SimpleImputer imp("median");
  ASSERT_TRUE(imp.Fit(X, {}).ok());
  EXPECT_DOUBLE_EQ(imp.Apply(X).At(1, 0), 3.0);
}

TEST(ImputerTest, MostFrequentStrategy) {
  Matrix X = MakeMatrix({{2.0}, {2.0}, {5.0}, {kNaN}});
  SimpleImputer imp("most_frequent");
  ASSERT_TRUE(imp.Fit(X, {}).ok());
  EXPECT_DOUBLE_EQ(imp.Apply(X).At(3, 0), 2.0);
}

TEST(ImputerTest, ConstantStrategy) {
  Matrix X = MakeMatrix({{kNaN}});
  SimpleImputer imp("constant", -1.0);
  ASSERT_TRUE(imp.Fit(X, {}).ok());
  EXPECT_DOUBLE_EQ(imp.Apply(X).At(0, 0), -1.0);
}

TEST(ImputerTest, AllNaNColumnFillsZeroForMean) {
  Matrix X = MakeMatrix({{kNaN}, {kNaN}});
  SimpleImputer imp("mean");
  ASSERT_TRUE(imp.Fit(X, {}).ok());
  EXPECT_DOUBLE_EQ(imp.Apply(X).At(0, 0), 0.0);
}

TEST(ImputerTest, UnknownStrategyRejected) {
  SimpleImputer imp("magic");
  Matrix X = MakeMatrix({{1.0}});
  EXPECT_FALSE(imp.Fit(X, {}).ok());
}

TEST(ImputerTest, ApplyOnNewDataUsesTrainStatistics) {
  Matrix train = MakeMatrix({{10.0}, {20.0}});
  Matrix test = MakeMatrix({{kNaN}});
  SimpleImputer imp("mean");
  ASSERT_TRUE(imp.Fit(train, {}).ok());
  EXPECT_DOUBLE_EQ(imp.Apply(test).At(0, 0), 15.0);
}

// ---- scalers -----------------------------------------------------------------

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  Matrix X = MakeMatrix({{1.0}, {2.0}, {3.0}, {4.0}});
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(X, {}).ok());
  Matrix out = scaler.Apply(X);
  double mean = 0.0;
  for (size_t r = 0; r < 4; ++r) mean += out.At(r, 0);
  EXPECT_NEAR(mean / 4, 0.0, 1e-12);
  double var = 0.0;
  for (size_t r = 0; r < 4; ++r) var += out.At(r, 0) * out.At(r, 0);
  EXPECT_NEAR(var / 4, 1.0, 1e-12);
}

TEST(StandardScalerTest, NaNPassesThrough) {
  Matrix X = MakeMatrix({{1.0}, {kNaN}, {3.0}});
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(X, {}).ok());
  EXPECT_TRUE(std::isnan(scaler.Apply(X).At(1, 0)));
}

TEST(MinMaxScalerTest, MapsToUnitInterval) {
  Matrix X = MakeMatrix({{-2.0}, {0.0}, {6.0}});
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(X, {}).ok());
  Matrix out = scaler.Apply(X);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 0.25);
}

TEST(MinMaxScalerTest, ConstantColumnSafe) {
  Matrix X = MakeMatrix({{3.0}, {3.0}});
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(X, {}).ok());
  EXPECT_DOUBLE_EQ(scaler.Apply(X).At(0, 0), 0.0);
}

TEST(RobustScalerTest, CentersOnMedian) {
  Matrix X = MakeMatrix({{1.0}, {2.0}, {3.0}, {4.0}, {100.0}});
  RobustScaler scaler(25.0, 75.0);
  ASSERT_TRUE(scaler.Fit(X, {}).ok());
  Matrix out = scaler.Apply(X);
  EXPECT_DOUBLE_EQ(out.At(2, 0), 0.0);  // median row maps to 0
}

TEST(RobustScalerTest, RobustToOutliers) {
  // The outlier should not blow up the scale of the bulk.
  Matrix X = MakeMatrix(
      {{1.0}, {2.0}, {3.0}, {4.0}, {5.0}, {6.0}, {7.0}, {1000.0}});
  RobustScaler robust(25.0, 75.0);
  StandardScaler standard;
  ASSERT_TRUE(robust.Fit(X, {}).ok());
  ASSERT_TRUE(standard.Fit(X, {}).ok());
  // Spread of the non-outlier bulk under each scaling:
  double robust_spread =
      robust.Apply(X).At(6, 0) - robust.Apply(X).At(0, 0);
  double standard_spread =
      standard.Apply(X).At(6, 0) - standard.Apply(X).At(0, 0);
  EXPECT_GT(robust_spread, standard_spread);
}

TEST(RobustScalerTest, QuantileRangeValidation) {
  Matrix X = MakeMatrix({{1.0}});
  EXPECT_FALSE(RobustScaler(80.0, 20.0).Fit(X, {}).ok());
  EXPECT_FALSE(RobustScaler(-5.0, 75.0).Fit(X, {}).ok());
  EXPECT_FALSE(RobustScaler(25.0, 101.0).Fit(X, {}).ok());
}

TEST(RobustScalerTest, DifferentQuantilesChangeScaling) {
  // The paper's Fig. 3c knob: q_min changes the rescaled distribution.
  Rng rng(3);
  Matrix X(200, 1);
  for (size_t i = 0; i < 200; ++i) X.At(i, 0) = rng.Normal(0, 1);
  RobustScaler narrow(40.0, 60.0);
  RobustScaler wide(5.0, 95.0);
  ASSERT_TRUE(narrow.Fit(X, {}).ok());
  ASSERT_TRUE(wide.Fit(X, {}).ok());
  // Narrow quantile range -> larger scaled magnitudes.
  EXPECT_GT(std::fabs(narrow.Apply(X).At(0, 0)),
            std::fabs(wide.Apply(X).At(0, 0)));
}

// ---- balancing ----------------------------------------------------------------

TEST(BalancingTest, WeightsEqualizeClassMass) {
  std::vector<int> y = {1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  auto w = BalancedClassWeights(y);
  ASSERT_TRUE(w.ok());
  double pos_mass = 0.0, neg_mass = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    (y[i] == 1 ? pos_mass : neg_mass) += (*w)[i];
  }
  EXPECT_NEAR(pos_mass, neg_mass, 1e-9);
}

TEST(BalancingTest, SingleClassRejected) {
  EXPECT_FALSE(BalancedClassWeights({1, 1, 1}).ok());
  Rng rng(1);
  EXPECT_FALSE(RandomOversampleIndices({0, 0}, &rng).ok());
}

TEST(BalancingTest, OversamplingReachesParity) {
  std::vector<int> y = {1, 1, 0, 0, 0, 0, 0, 0};
  Rng rng(2);
  auto idx = RandomOversampleIndices(y, &rng);
  ASSERT_TRUE(idx.ok());
  size_t pos = 0, neg = 0;
  for (size_t i : *idx) (y[i] == 1 ? pos : neg) += 1;
  EXPECT_EQ(pos, neg);
  // Every original row appears at least once.
  std::set<size_t> seen(idx->begin(), idx->end());
  EXPECT_EQ(seen.size(), y.size());
}

// ---- feature selection -----------------------------------------------------------

Matrix MakeSupervised(std::vector<int>* y) {
  // col 0: strong signal; col 1: weak signal; col 2: noise.
  Rng rng(4);
  Matrix X(120, 3);
  y->resize(120);
  for (size_t i = 0; i < 120; ++i) {
    int label = i % 2;
    (*y)[i] = label;
    X.At(i, 0) = label * 3.0 + rng.Normal(0, 0.3);
    X.At(i, 1) = label * 0.5 + rng.Normal(0, 1.0);
    X.At(i, 2) = rng.Normal(0, 1.0);
  }
  return X;
}

TEST(SelectPercentileTest, KeepsTopFeatures) {
  std::vector<int> y;
  Matrix X = MakeSupervised(&y);
  SelectPercentile sel(33.0, "f_classif");  // top 1 of 3 (ceil(0.99))
  ASSERT_TRUE(sel.Fit(X, y).ok());
  ASSERT_EQ(sel.selected().size(), 1u);
  EXPECT_EQ(sel.selected()[0], 0u);
  EXPECT_EQ(sel.Apply(X).cols(), 1u);
}

TEST(SelectPercentileTest, HundredPercentKeepsAll) {
  std::vector<int> y;
  Matrix X = MakeSupervised(&y);
  SelectPercentile sel(100.0);
  ASSERT_TRUE(sel.Fit(X, y).ok());
  EXPECT_EQ(sel.selected().size(), 3u);
}

TEST(SelectPercentileTest, OutputNamesTrackSelection) {
  std::vector<int> y;
  Matrix X = MakeSupervised(&y);
  SelectPercentile sel(33.0);
  ASSERT_TRUE(sel.Fit(X, y).ok());
  auto names = sel.OutputNames({"a", "b", "c"});
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "a");
}

TEST(SelectPercentileTest, InvalidPercentileRejected) {
  std::vector<int> y;
  Matrix X = MakeSupervised(&y);
  EXPECT_FALSE(SelectPercentile(0.0).Fit(X, y).ok());
  EXPECT_FALSE(SelectPercentile(150.0).Fit(X, y).ok());
}

TEST(SelectPercentileTest, Chi2ScoreFunctionWorks) {
  std::vector<int> y;
  Matrix X = MakeSupervised(&y);
  SelectPercentile sel(33.0, "chi2");
  ASSERT_TRUE(sel.Fit(X, y).ok());
  EXPECT_EQ(sel.selected().size(), 1u);
}

TEST(SelectRatesTest, FprKeepsSignificantFeatures) {
  std::vector<int> y;
  Matrix X = MakeSupervised(&y);
  SelectRates sel(0.05, "fpr", "f_classif");
  ASSERT_TRUE(sel.Fit(X, y).ok());
  // The strong feature must survive; pure noise should usually be dropped.
  EXPECT_NE(std::find(sel.selected().begin(), sel.selected().end(), 0u),
            sel.selected().end());
  EXPECT_LT(sel.selected().size(), 3u);
}

TEST(SelectRatesTest, ModesAreOrderedByStrictness) {
  std::vector<int> y;
  Matrix X = MakeSupervised(&y);
  SelectRates fpr(0.10, "fpr", "f_classif");
  SelectRates fwe(0.10, "fwe", "f_classif");
  ASSERT_TRUE(fpr.Fit(X, y).ok());
  ASSERT_TRUE(fwe.Fit(X, y).ok());
  EXPECT_GE(fpr.selected().size(), fwe.selected().size());
}

TEST(SelectRatesTest, NeverReturnsZeroFeatures) {
  // All-noise data with a strict threshold: still keeps one feature.
  Rng rng(5);
  Matrix X(50, 4);
  std::vector<int> y(50);
  for (size_t i = 0; i < 50; ++i) {
    y[i] = i % 2;
    for (size_t c = 0; c < 4; ++c) X.At(i, c) = rng.Normal(0, 1);
  }
  SelectRates sel(0.01, "fwe", "f_classif");
  ASSERT_TRUE(sel.Fit(X, y).ok());
  EXPECT_GE(sel.selected().size(), 1u);
}

TEST(SelectRatesTest, BadParamsRejected) {
  std::vector<int> y;
  Matrix X = MakeSupervised(&y);
  EXPECT_FALSE(SelectRates(0.0, "fpr").Fit(X, y).ok());
  EXPECT_FALSE(SelectRates(0.05, "bogus").Fit(X, y).ok());
}

TEST(VarianceThresholdTest, DropsConstantFeatures) {
  Matrix X = MakeMatrix({{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}});
  VarianceThreshold sel(1e-9);
  ASSERT_TRUE(sel.Fit(X, {}).ok());
  ASSERT_EQ(sel.selected().size(), 1u);
  EXPECT_EQ(sel.selected()[0], 0u);
}

// ---- PCA --------------------------------------------------------------------------

TEST(JacobiEigenTest, DiagonalMatrix) {
  std::vector<double> a = {3.0, 0.0, 0.0, 1.0};
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  JacobiEigenSymmetric(a, 2, &values, &vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
}

TEST(JacobiEigenTest, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  std::vector<double> a = {2.0, 1.0, 1.0, 2.0};
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  JacobiEigenSymmetric(a, 2, &values, &vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::fabs(vectors[0][1]), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(PcaTest, RecoversLowRankStructure) {
  // Data lives on a 1-D line in 3-D space (plus tiny noise).
  Rng rng(6);
  Matrix X(100, 3);
  for (size_t i = 0; i < 100; ++i) {
    double t = rng.Normal(0, 2);
    X.At(i, 0) = t + rng.Normal(0, 0.01);
    X.At(i, 1) = 2 * t + rng.Normal(0, 0.01);
    X.At(i, 2) = -t + rng.Normal(0, 0.01);
  }
  Pca pca(0.99);
  ASSERT_TRUE(pca.Fit(X, {}).ok());
  EXPECT_EQ(pca.num_components(), 1u);
  EXPECT_EQ(pca.Apply(X).cols(), 1u);
}

TEST(PcaTest, KeepVarianceControlsComponents) {
  Rng rng(7);
  Matrix X(80, 4);
  for (size_t i = 0; i < 80; ++i) {
    for (size_t c = 0; c < 4; ++c) X.At(i, c) = rng.Normal(0, 1.0 + c);
  }
  Pca low(0.5);
  Pca high(0.9999);
  ASSERT_TRUE(low.Fit(X, {}).ok());
  ASSERT_TRUE(high.Fit(X, {}).ok());
  EXPECT_LE(low.num_components(), high.num_components());
  EXPECT_EQ(high.num_components(), 4u);
}

TEST(PcaTest, RejectsNaN) {
  Matrix X = MakeMatrix({{1.0, kNaN}, {2.0, 3.0}});
  Pca pca(0.9);
  EXPECT_EQ(pca.Fit(X, {}).code(), StatusCode::kFailedPrecondition);
}

TEST(PcaTest, ProjectionPreservesPairwiseStructure) {
  // Full-variance PCA is a rotation: distances are preserved.
  Rng rng(8);
  Matrix X(40, 3);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t c = 0; c < 3; ++c) X.At(i, c) = rng.Normal(0, 1);
  }
  Pca pca(1.0);
  ASSERT_TRUE(pca.Fit(X, {}).ok());
  Matrix Z = pca.Apply(X);
  ASSERT_EQ(Z.cols(), 3u);
  auto dist = [](const Matrix& m, size_t a, size_t b) {
    double d = 0;
    for (size_t c = 0; c < m.cols(); ++c) {
      double diff = m.At(a, c) - m.At(b, c);
      d += diff * diff;
    }
    return std::sqrt(d);
  };
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_NEAR(dist(X, 0, i), dist(Z, 0, i), 1e-8);
  }
}

// ---- feature agglomeration -----------------------------------------------------------

TEST(FeatureAgglomerationTest, MergesCorrelatedFeatures) {
  Rng rng(9);
  Matrix X(100, 4);
  for (size_t i = 0; i < 100; ++i) {
    double a = rng.Normal(0, 1);
    double b = rng.Normal(0, 1);
    X.At(i, 0) = a;
    X.At(i, 1) = a * 2.0 + rng.Normal(0, 0.01);  // ~ duplicate of col 0
    X.At(i, 2) = b;
    X.At(i, 3) = -b + rng.Normal(0, 0.01);       // ~ anti-duplicate of col 2
  }
  FeatureAgglomeration agg(2);
  ASSERT_TRUE(agg.Fit(X, {}).ok());
  EXPECT_EQ(agg.num_clusters(), 2u);
  EXPECT_EQ(agg.cluster_of()[0], agg.cluster_of()[1]);
  EXPECT_EQ(agg.cluster_of()[2], agg.cluster_of()[3]);
  EXPECT_NE(agg.cluster_of()[0], agg.cluster_of()[2]);
  EXPECT_EQ(agg.Apply(X).cols(), 2u);
}

TEST(FeatureAgglomerationTest, MoreClustersThanFeaturesClamps) {
  Matrix X = MakeMatrix({{1.0, 2.0}, {2.0, 1.0}, {0.5, 0.2}});
  FeatureAgglomeration agg(10);
  ASSERT_TRUE(agg.Fit(X, {}).ok());
  EXPECT_EQ(agg.num_clusters(), 2u);
}

TEST(FeatureAgglomerationTest, PooledValueIsClusterMean) {
  Matrix X = MakeMatrix({{2.0, 4.0}});
  FeatureAgglomeration agg(1);
  Matrix train = MakeMatrix({{1.0, 1.1}, {2.0, 2.1}, {-1.0, -0.9}});
  ASSERT_TRUE(agg.Fit(train, {}).ok());
  ASSERT_EQ(agg.num_clusters(), 1u);
  EXPECT_DOUBLE_EQ(agg.Apply(X).At(0, 0), 3.0);
}

TEST(FeatureAgglomerationTest, InvalidClusterCountRejected) {
  Matrix X = MakeMatrix({{1.0}});
  EXPECT_FALSE(FeatureAgglomeration(0).Fit(X, {}).ok());
}

}  // namespace
}  // namespace autoem
