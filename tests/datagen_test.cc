#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/benchmark_gen.h"
#include "datagen/corruptor.h"
#include "datagen/vocab.h"
#include "features/feature_gen.h"
#include "text/similarity.h"

namespace autoem {
namespace {

// ---- vocab --------------------------------------------------------------------

TEST(VocabTest, PoolsAreNonEmptyAndStable) {
  EXPECT_FALSE(vocab::RestaurantNameWords().empty());
  EXPECT_FALSE(vocab::Cities().empty());
  EXPECT_FALSE(vocab::Brands().empty());
  EXPECT_FALSE(vocab::PaperTitleWords().empty());
  EXPECT_FALSE(vocab::BeerStyles().empty());
  EXPECT_FALSE(vocab::Genres().empty());
  // Stable addresses: repeated calls return the same list.
  EXPECT_EQ(&vocab::Brands(), &vocab::Brands());
}

TEST(VocabTest, PickPhraseHasRequestedWords) {
  Rng rng(1);
  std::string phrase = vocab::PickPhrase(vocab::PaperTitleWords(), 4, &rng);
  EXPECT_EQ(SplitWhitespace(phrase).size(), 4u);
}

// ---- corruptor -----------------------------------------------------------------

TEST(CorruptorTest, CleanProfileBarelyChangesStrings) {
  Rng rng(2);
  Corruptor corruptor(CorruptionProfile::Clean(), &rng);
  int unchanged = 0;
  for (int i = 0; i < 100; ++i) {
    if (corruptor.CorruptString("golden dragon palace") ==
        "golden dragon palace") {
      ++unchanged;
    }
  }
  EXPECT_GT(unchanged, 60);
}

TEST(CorruptorTest, HeavyProfileChangesMostStrings) {
  Rng rng(3);
  Corruptor corruptor(CorruptionProfile::Heavy(), &rng);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (corruptor.CorruptString("golden dragon palace restaurant group") !=
        "golden dragon palace restaurant group") {
      ++changed;
    }
  }
  EXPECT_GT(changed, 80);
}

TEST(CorruptorTest, CorruptedStringStaysSimilar) {
  // Even heavy corruption must leave recognizable signal (the generator's
  // positives would be unlearnable otherwise).
  Rng rng(4);
  Corruptor corruptor(CorruptionProfile::Heavy(), &rng);
  double total_sim = 0.0;
  const std::string base = "sony professional camera kit deluxe";
  for (int i = 0; i < 50; ++i) {
    total_sim += JaroWinklerSimilarity(base, corruptor.CorruptString(base));
  }
  EXPECT_GT(total_sim / 50, 0.55);
}

TEST(CorruptorTest, TypoEditCountScalesWithLength) {
  CorruptionProfile profile;
  profile.typo_rate = 0.1;
  Rng rng(5);
  Corruptor corruptor(profile, &rng);
  double short_edits = 0.0, long_edits = 0.0;
  std::string short_s(10, 'a');
  std::string long_s(60, 'a');
  for (int i = 0; i < 60; ++i) {
    short_edits += LevenshteinDistance(short_s, corruptor.Typo(short_s));
    long_edits += LevenshteinDistance(long_s, corruptor.Typo(long_s));
  }
  EXPECT_GT(long_edits, short_edits * 2);
}

TEST(CorruptorTest, DropTokensKeepsHead) {
  CorruptionProfile profile;
  profile.token_drop_rate = 0.9;
  Rng rng(6);
  Corruptor corruptor(profile, &rng);
  for (int i = 0; i < 30; ++i) {
    std::string out = corruptor.DropTokens("alpha beta gamma delta");
    EXPECT_EQ(SplitWhitespace(out)[0], "alpha");
  }
}

TEST(CorruptorTest, AbbreviateRewritesKnownWords) {
  CorruptionProfile profile;
  profile.abbreviate_rate = 1.0;
  Rng rng(7);
  Corruptor corruptor(profile, &rng);
  std::string out = corruptor.Abbreviate("sunset boulevard");
  EXPECT_EQ(out, "sunset blvd.");
}

TEST(CorruptorTest, NullRateNullsValues) {
  CorruptionProfile profile;
  profile.null_rate = 1.0;
  Rng rng(8);
  Corruptor corruptor(profile, &rng);
  EXPECT_TRUE(corruptor.Corrupt(Value("x")).is_null());
  EXPECT_TRUE(corruptor.Corrupt(Value(3.0)).is_null());
  EXPECT_TRUE(corruptor.Corrupt(Value::Null()).is_null());
}

TEST(CorruptorTest, NumericJitterIsRelative) {
  CorruptionProfile profile;
  profile.numeric_jitter = 0.1;
  Rng rng(9);
  Corruptor corruptor(profile, &rng);
  double total_rel = 0.0;
  for (int i = 0; i < 200; ++i) {
    total_rel += std::fabs(corruptor.CorruptNumber(100.0) - 100.0) / 100.0;
  }
  EXPECT_NEAR(total_rel / 200, 0.08, 0.04);  // E|N(0,0.1)| ~ 0.0798
}

TEST(CorruptorTest, SeverityInterpolationIsMonotone) {
  CorruptionProfile lo = CorruptionProfile::FromSeverity(0.2);
  CorruptionProfile hi = CorruptionProfile::FromSeverity(0.8);
  EXPECT_LT(lo.typo_rate, hi.typo_rate);
  EXPECT_LT(lo.token_drop_rate, hi.token_drop_rate);
  EXPECT_LT(lo.null_rate, hi.null_rate);
}

// ---- benchmark generator ----------------------------------------------------------

TEST(BenchmarkGenTest, EightProfilesWithPaperNames) {
  const auto& profiles = BenchmarkProfiles();
  ASSERT_EQ(profiles.size(), 8u);
  EXPECT_EQ(profiles[0].name, "BeerAdvo-RateBeer");
  EXPECT_EQ(profiles[7].name, "Abt-Buy");
  EXPECT_TRUE(FindProfile("DBLP-ACM").ok());
  EXPECT_FALSE(FindProfile("Nonexistent").ok());
}

TEST(BenchmarkGenTest, TableIIIPairCounts) {
  // Full-scale counts must match the paper's Table III.
  auto p = FindProfile("Walmart-Amazon");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->train_pairs, 8193u);
  EXPECT_EQ(p->test_pairs, 2049u);
  EXPECT_EQ(p->total_positives, 962u);
}

TEST(BenchmarkGenTest, GeneratedSizesMatchScaledProfile) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 1, 0.5);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_NEAR(static_cast<double>(data->train.pairs.size()), 757 * 0.5, 2.0);
  EXPECT_NEAR(static_cast<double>(data->test.pairs.size()), 189 * 0.5, 2.0);
  size_t pos =
      data->train.NumPositives() + data->test.NumPositives();
  EXPECT_NEAR(static_cast<double>(pos), 110 * 0.5, 3.0);
}

TEST(BenchmarkGenTest, DeterministicGivenSeed) {
  auto d1 = GenerateBenchmarkByName("iTunes-Amazon", 77, 0.3);
  auto d2 = GenerateBenchmarkByName("iTunes-Amazon", 77, 0.3);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  ASSERT_EQ(d1->train.pairs.size(), d2->train.pairs.size());
  for (size_t i = 0; i < d1->train.pairs.size(); ++i) {
    EXPECT_EQ(d1->train.pairs[i].label, d2->train.pairs[i].label);
    for (size_t c = 0; c < d1->train.left.schema().num_attributes(); ++c) {
      EXPECT_EQ(d1->train.left.cell(i, c), d2->train.left.cell(i, c));
    }
  }
}

TEST(BenchmarkGenTest, DifferentSeedsDiffer) {
  auto d1 = GenerateBenchmarkByName("Abt-Buy", 1, 0.1);
  auto d2 = GenerateBenchmarkByName("Abt-Buy", 2, 0.1);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  bool any_diff = false;
  for (size_t i = 0; i < std::min(d1->train.left.num_rows(),
                                  d2->train.left.num_rows());
       ++i) {
    if (!(d1->train.left.cell(i, 0) == d2->train.left.cell(i, 0))) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(BenchmarkGenTest, SchemasMatchTableIII) {
  struct Expect {
    const char* name;
    size_t attrs;
  };
  // Attribute counts from the paper's Table III.
  const Expect kExpected[] = {
      {"BeerAdvo-RateBeer", 4}, {"Fodors-Zagats", 6}, {"iTunes-Amazon", 8},
      {"DBLP-ACM", 4},          {"DBLP-Scholar", 4},  {"Amazon-Google", 3},
      {"Walmart-Amazon", 5},    {"Abt-Buy", 3},
  };
  for (const auto& e : kExpected) {
    auto data = GenerateBenchmarkByName(e.name, 3, 0.05);
    ASSERT_TRUE(data.ok()) << e.name;
    EXPECT_EQ(data->train.left.schema().num_attributes(), e.attrs) << e.name;
    EXPECT_TRUE(data->train.left.schema() == data->train.right.schema());
  }
}

TEST(BenchmarkGenTest, PositivesAreMoreSimilarThanNegatives) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 5, 0.5);
  ASSERT_TRUE(data.ok());
  double pos_sim = 0.0, neg_sim = 0.0;
  size_t n_pos = 0, n_neg = 0;
  for (const auto& pair : data->train.pairs) {
    const Value& l = data->train.left.cell(pair.left_id, 0);
    const Value& r = data->train.right.cell(pair.right_id, 0);
    if (l.is_null() || r.is_null()) continue;
    double sim = JaroWinklerSimilarity(l.ToString(), r.ToString());
    if (pair.label == 1) {
      pos_sim += sim;
      ++n_pos;
    } else {
      neg_sim += sim;
      ++n_neg;
    }
  }
  ASSERT_GT(n_pos, 0u);
  ASSERT_GT(n_neg, 0u);
  EXPECT_GT(pos_sim / n_pos, neg_sim / n_neg + 0.1);
}

TEST(BenchmarkGenTest, HardDatasetsOverlapMoreThanEasyOnes) {
  // The calibrated difficulty ordering: name similarity separates
  // Fodors-Zagats pairs far better than Abt-Buy pairs.
  auto gap = [](const BenchmarkData& data) {
    double pos = 0.0, neg = 0.0;
    size_t n_pos = 0, n_neg = 0;
    for (const auto& pair : data.train.pairs) {
      const Value& l = data.train.left.cell(pair.left_id, 0);
      const Value& r = data.train.right.cell(pair.right_id, 0);
      if (l.is_null() || r.is_null()) continue;
      double sim = LevenshteinSimilarity(l.ToString(), r.ToString());
      if (pair.label == 1) {
        pos += sim;
        ++n_pos;
      } else {
        neg += sim;
        ++n_neg;
      }
    }
    return pos / n_pos - neg / n_neg;
  };
  auto easy = GenerateBenchmarkByName("Fodors-Zagats", 6, 0.5);
  auto hard = GenerateBenchmarkByName("Abt-Buy", 6, 0.1);
  ASSERT_TRUE(easy.ok());
  ASSERT_TRUE(hard.ok());
  EXPECT_GT(gap(*easy), gap(*hard));
}

TEST(BenchmarkGenTest, LongStringAttributeInAbtBuy) {
  auto data = GenerateBenchmarkByName("Abt-Buy", 7, 0.1);
  ASSERT_TRUE(data.ok());
  AutoMlEmFeatureGenerator gen;
  ASSERT_TRUE(gen.Plan(data->train.left, data->train.right).ok());
  // description must classify as a long string: AutoML-EM still assigns all
  // 16 string functions while Magellan would only give 2.
  EXPECT_EQ(InferAttributeClass(data->train.left, data->train.right, 1),
            AttributeClass::kLongString);
}

TEST(BenchmarkGenTest, InvalidScaleRejected) {
  auto p = FindProfile("DBLP-ACM");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(GenerateBenchmark(*p, 1, 0.0).ok());
  EXPECT_FALSE(GenerateBenchmark(*p, 1, -1.0).ok());
  EXPECT_FALSE(GenerateBenchmark(*p, 1, 11.0).ok());
}

TEST(BenchmarkGenTest, PairIdsAreInRange) {
  auto data = GenerateBenchmarkByName("DBLP-ACM", 8, 0.05);
  ASSERT_TRUE(data.ok());
  for (const PairSet* ps : {&data->train, &data->test}) {
    for (const auto& pair : ps->pairs) {
      EXPECT_LT(pair.left_id, ps->left.num_rows());
      EXPECT_LT(pair.right_id, ps->right.num_rows());
      EXPECT_TRUE(pair.label == 0 || pair.label == 1);
    }
  }
}

}  // namespace
}  // namespace autoem
