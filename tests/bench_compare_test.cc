// Tests for the bench_compare engine behind the CI perf-gate: parsing the
// standardized `--json-out` artifacts, min-merging repeated runs, and the
// noise-banded verdict logic. The acceptance contract is sharp — identical
// inputs must pass, a 20% synthetic slowdown must fail at the default ±8%
// band, and a gated case that silently disappears must fail too.
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "tools/bench_compare_lib.h"

namespace autoem {
namespace tools {
namespace {

// A minimal artifact in the schema bench_util.h emits.
std::string Artifact(double batched_s, double serial_s) {
  std::string json = "{\"meta\":{\"git_sha\":\"abc123\",\"cpu_model\":"
                     "\"TestCPU\",\"threads\":4},\"cases\":[";
  json += "{\"name\":\"score_batched\",\"seconds\":" +
          std::to_string(batched_s) + "},";
  json += "{\"name\":\"score_serial\",\"seconds\":" +
          std::to_string(serial_s) + "}";
  json += "]}";
  return json;
}

BenchFile MustParse(const std::string& text) {
  auto parsed = ParseBenchJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(*parsed);
}

TEST(BenchCompareParseTest, ReadsMetaAndCases) {
  BenchFile file = MustParse(Artifact(0.5, 1.0));
  EXPECT_EQ(file.meta.at("git_sha"), "abc123");
  EXPECT_EQ(file.meta.at("cpu_model"), "TestCPU");
  EXPECT_EQ(file.meta.at("threads"), "4");
  ASSERT_EQ(file.cases.size(), 2u);
  EXPECT_DOUBLE_EQ(file.cases.at("score_batched").seconds, 0.5);
  EXPECT_DOUBLE_EQ(file.cases.at("score_serial").seconds, 1.0);
}

TEST(BenchCompareParseTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseBenchJson("{\"cases\":[").ok());
  EXPECT_FALSE(ParseBenchJson("not json at all").ok());
  EXPECT_FALSE(ParseBenchJson(Artifact(1, 1) + "trailing").ok());
}

TEST(BenchCompareParseTest, CaseWithoutSecondsIsDimensionless) {
  BenchFile file = MustParse(
      "{\"cases\":[{\"name\":\"fig.f1\",\"counters\":{\"f1\":0.92}}]}");
  ASSERT_EQ(file.cases.count("fig.f1"), 1u);
  EXPECT_EQ(file.cases.at("fig.f1").seconds, 0.0);
}

TEST(BenchCompareMergeTest, SerializeRoundTripsAndMinMerges) {
  BenchFile run1 = MustParse(Artifact(0.50, 1.10));
  BenchFile run2 = MustParse(Artifact(0.48, 1.30));  // best batched run
  // Min-merge happens in LoadBenchFiles (file-level); emulate it by merging
  // through serialization: the serialized form of each must re-parse to the
  // same stats.
  BenchFile reparsed = MustParse(SerializeBenchFile(run1));
  EXPECT_DOUBLE_EQ(reparsed.cases.at("score_batched").seconds, 0.50);
  EXPECT_DOUBLE_EQ(reparsed.cases.at("score_serial").seconds, 1.10);
  EXPECT_EQ(reparsed.meta.at("cpu_model"), "TestCPU");

  // CompareBench against a min-merged current: take min by hand.
  BenchFile merged;
  merged.meta = run1.meta;
  for (const auto& [name, stat] : run1.cases) {
    BenchCaseStat best = stat;
    auto other = run2.cases.find(name);
    if (other != run2.cases.end() && other->second.seconds < best.seconds) {
      best.seconds = other->second.seconds;
    }
    best.runs = 2;
    merged.cases[name] = best;
  }
  EXPECT_DOUBLE_EQ(merged.cases.at("score_batched").seconds, 0.48);
  EXPECT_DOUBLE_EQ(merged.cases.at("score_serial").seconds, 1.10);
}

TEST(BenchCompareVerdictTest, IdenticalInputsPass) {
  BenchFile file = MustParse(Artifact(0.5, 1.0));
  CompareReport report = CompareBench(file, file, CompareOptions{});
  EXPECT_FALSE(report.Failed());
  EXPECT_EQ(report.regressed, 0);
  EXPECT_EQ(report.ok, 2);
  for (const CaseComparison& comparison : report.cases) {
    EXPECT_EQ(comparison.verdict, Verdict::kOk) << comparison.name;
    EXPECT_DOUBLE_EQ(comparison.ratio, 1.0) << comparison.name;
  }
}

TEST(BenchCompareVerdictTest, TwentyPercentSlowdownFailsAtDefaultNoise) {
  BenchFile baseline = MustParse(Artifact(0.5, 1.0));
  BenchFile current = MustParse(Artifact(0.5 * 1.20, 1.0));
  CompareOptions options;  // noise = 0.08
  CompareReport report = CompareBench(baseline, current, options);
  EXPECT_TRUE(report.Failed());
  EXPECT_EQ(report.regressed, 1);
  EXPECT_EQ(report.ok, 1);
  // Worst ratio sorts first so the CI log leads with the regression.
  ASSERT_FALSE(report.cases.empty());
  EXPECT_EQ(report.cases.front().name, "score_batched");
  EXPECT_EQ(report.cases.front().verdict, Verdict::kRegressed);
  EXPECT_NEAR(report.cases.front().ratio, 1.20, 1e-9);
}

TEST(BenchCompareVerdictTest, SlowdownWithinNoiseBandPasses) {
  BenchFile baseline = MustParse(Artifact(0.5, 1.0));
  BenchFile current = MustParse(Artifact(0.5 * 1.05, 1.0 * 0.95));
  CompareReport report = CompareBench(baseline, current, CompareOptions{});
  EXPECT_FALSE(report.Failed());
  EXPECT_EQ(report.ok, 2);
}

TEST(BenchCompareVerdictTest, BigSpeedupIsImprovedNotFailed) {
  BenchFile baseline = MustParse(Artifact(1.0, 1.0));
  BenchFile current = MustParse(Artifact(0.5, 1.0));
  CompareReport report = CompareBench(baseline, current, CompareOptions{});
  EXPECT_FALSE(report.Failed());
  EXPECT_EQ(report.improved, 1);
}

TEST(BenchCompareVerdictTest, MissingBaselineCaseFailsLoudly) {
  BenchFile baseline = MustParse(Artifact(0.5, 1.0));
  BenchFile current = MustParse(
      "{\"meta\":{},\"cases\":[{\"name\":\"score_batched\","
      "\"seconds\":0.5}]}");
  CompareReport report = CompareBench(baseline, current, CompareOptions{});
  EXPECT_TRUE(report.Failed()) << "lost coverage must gate";
  EXPECT_EQ(report.missing_in_current, 1);
}

TEST(BenchCompareVerdictTest, NewCaseDoesNotFail) {
  BenchFile baseline = MustParse(
      "{\"meta\":{},\"cases\":[{\"name\":\"score_batched\","
      "\"seconds\":0.5}]}");
  BenchFile current = MustParse(Artifact(0.5, 1.0));
  CompareReport report = CompareBench(baseline, current, CompareOptions{});
  EXPECT_FALSE(report.Failed());
  EXPECT_EQ(report.added, 1);
}

TEST(BenchCompareVerdictTest, SubMicrosecondCasesAreSkipped) {
  // A 40ns guard bench doubling is timer noise, not a regression.
  BenchFile baseline = MustParse(
      "{\"cases\":[{\"name\":\"guard_ns\",\"seconds\":4.0e-8}]}");
  BenchFile current = MustParse(
      "{\"cases\":[{\"name\":\"guard_ns\",\"seconds\":8.0e-8}]}");
  CompareReport report = CompareBench(baseline, current, CompareOptions{});
  EXPECT_FALSE(report.Failed());
  EXPECT_EQ(report.skipped, 1);
}

TEST(BenchCompareReportTest, JsonAndTextCarryTheVerdict) {
  BenchFile baseline = MustParse(Artifact(0.5, 1.0));
  BenchFile current = MustParse(Artifact(0.70, 1.0));
  CompareReport report = CompareBench(baseline, current, CompareOptions{});
  ASSERT_TRUE(report.Failed());

  std::string json = CompareReportJson(report);
  EXPECT_NE(json.find("\"failed\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"regressed\""), std::string::npos) << json;
  EXPECT_NE(json.find("score_batched"), std::string::npos) << json;

  std::string text = CompareReportText(report);
  EXPECT_NE(text.find("FAIL"), std::string::npos) << text;
  EXPECT_NE(text.find("score_batched"), std::string::npos) << text;
}

}  // namespace
}  // namespace tools
}  // namespace autoem
