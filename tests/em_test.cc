#include <gtest/gtest.h>

#include "datagen/benchmark_gen.h"
#include "em/blocking.h"
#include "em/matcher.h"
#include "em/pairs_io.h"

namespace autoem {
namespace {

Table MakeRestaurants(const std::string& name,
                      const std::vector<std::vector<const char*>>& rows) {
  Table t(name, Schema({"name", "city"}));
  for (const auto& row : rows) {
    EXPECT_TRUE(t.Append(Record({Value(row[0]), Value(row[1])})).ok());
  }
  return t;
}

// ---- blocking -------------------------------------------------------------------

TEST(BlockingTest, AttributeEquivalenceGroupsByKey) {
  Table left = MakeRestaurants(
      "A", {{"arnie mortons", "los angeles"}, {"arts deli", "studio city"}});
  Table right = MakeRestaurants(
      "B",
      {{"arnie mortons of chicago", "Los Angeles"},  // case-insensitive
       {"arts delicatessen", "studio city"},
       {"fenix", "west hollywood"}});
  AttributeEquivalenceBlocker blocker("city");
  auto pairs = blocker.Block(left, right);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 2u);
  for (const auto& p : *pairs) EXPECT_EQ(p.label, -1);
}

TEST(BlockingTest, AttributeEquivalenceSkipsNulls) {
  Table left("A", Schema({"k"}));
  ASSERT_TRUE(left.Append(Record({Value::Null()})).ok());
  Table right("B", Schema({"k"}));
  ASSERT_TRUE(right.Append(Record({Value::Null()})).ok());
  AttributeEquivalenceBlocker blocker("k");
  auto pairs = blocker.Block(left, right);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());  // null keys never pair
}

TEST(BlockingTest, MissingAttributeRejected) {
  Table left = MakeRestaurants("A", {{"x", "y"}});
  Table right = MakeRestaurants("B", {{"x", "y"}});
  AttributeEquivalenceBlocker blocker("bogus");
  EXPECT_FALSE(blocker.Block(left, right).ok());
  QGramBlocker qblocker("bogus");
  EXPECT_FALSE(qblocker.Block(left, right).ok());
}

TEST(BlockingTest, QGramSurvivesTypos) {
  Table left = MakeRestaurants("A", {{"arnie mortons", "la"}});
  Table right = MakeRestaurants("B", {{"arnie mortns", "la"},  // typo
                                      {"zzzz qqqq", "la"}});
  QGramBlocker blocker("name", /*min_shared=*/4);
  auto pairs = blocker.Block(left, right);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0].right_id, 0u);
}

TEST(BlockingTest, QGramRecallOnGeneratedData) {
  // On the easy restaurant benchmark, q-gram blocking on name should keep
  // nearly all true matches.
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 3, 0.3);
  ASSERT_TRUE(data.ok());
  QGramBlocker blocker("name", 3);
  auto candidates = blocker.Block(data->train.left, data->train.right);
  ASSERT_TRUE(candidates.ok());
  double recall = BlockingRecall(*candidates, data->train.pairs);
  EXPECT_GT(recall, 0.85);
}

TEST(BlockingTest, RecallComputation) {
  std::vector<RecordPair> truth = {{0, 0, 1}, {1, 1, 1}, {2, 2, 0}};
  std::vector<RecordPair> candidates = {{0, 0, -1}, {5, 5, -1}};
  EXPECT_DOUBLE_EQ(BlockingRecall(candidates, truth), 0.5);
  EXPECT_DOUBLE_EQ(BlockingRecall({}, {{0, 0, 0}}), 1.0);  // no true matches
}

// ---- EntityMatcher end-to-end -----------------------------------------------------

TEST(EntityMatcherTest, TrainsAndEvaluatesOnBenchmark) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 4, 0.4);
  ASSERT_TRUE(data.ok());
  EntityMatcher::Options options;
  options.automl.max_evaluations = 6;
  auto matcher = EntityMatcher::Train(data->train, options);
  ASSERT_TRUE(matcher.ok()) << matcher.status().ToString();
  auto report = matcher->Evaluate(data->test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->f1, 0.7);
  EXPECT_EQ(report->num_pairs, data->test.pairs.size());
  EXPECT_EQ(report->num_positives, data->test.NumPositives());
}

TEST(EntityMatcherTest, ScoresAreProbabilities) {
  auto data = GenerateBenchmarkByName("iTunes-Amazon", 5, 0.4);
  ASSERT_TRUE(data.ok());
  EntityMatcher::Options options;
  options.automl.max_evaluations = 4;
  auto matcher = EntityMatcher::Train(data->train, options);
  ASSERT_TRUE(matcher.ok());
  auto scores = matcher->ScorePairs(data->test);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), data->test.pairs.size());
  for (double s : *scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(EntityMatcherTest, MagellanFeatureModeWorks) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 6, 0.3);
  ASSERT_TRUE(data.ok());
  EntityMatcher::Options options;
  options.feature_generator = "magellan";
  options.automl.max_evaluations = 4;
  auto matcher = EntityMatcher::Train(data->train, options);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ(matcher->feature_generator().name(), "magellan");
}

TEST(EntityMatcherTest, ThresholdTradesPrecisionForRecall) {
  auto data = GenerateBenchmarkByName("Amazon-Google", 7, 0.2);
  ASSERT_TRUE(data.ok());
  EntityMatcher::Options options;
  options.automl.max_evaluations = 5;
  auto matcher = EntityMatcher::Train(data->train, options);
  ASSERT_TRUE(matcher.ok());
  auto strict = matcher->Evaluate(data->test, 0.9);
  auto lenient = matcher->Evaluate(data->test, 0.1);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(lenient.ok());
  EXPECT_GE(lenient->recall, strict->recall);
}

TEST(EntityMatcherTest, EmptyTrainingRejected) {
  PairSet empty;
  EntityMatcher::Options options;
  EXPECT_FALSE(EntityMatcher::Train(empty, options).ok());
}

TEST(EntityMatcherTest, UnknownFeatureGeneratorRejected) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 8, 0.1);
  ASSERT_TRUE(data.ok());
  EntityMatcher::Options options;
  options.feature_generator = "bogus";
  EXPECT_FALSE(EntityMatcher::Train(data->train, options).ok());
}

// ---- pairs interchange format ------------------------------------------------

TEST(PairsIoTest, RoundTripsThroughTable) {
  std::vector<RecordPair> pairs = {{0, 2, 1}, {1, 0, 0}, {3, 1, -1}};
  Table t = PairsToTable(pairs);
  EXPECT_EQ(t.num_rows(), 3u);
  auto back = PairsFromTable(t, /*left_rows=*/4, /*right_rows=*/3);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 3u);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*back)[i].left_id, pairs[i].left_id);
    EXPECT_EQ((*back)[i].right_id, pairs[i].right_id);
    EXPECT_EQ((*back)[i].label, pairs[i].label);
  }
}

TEST(PairsIoTest, OutOfRangeIdsRejected) {
  std::vector<RecordPair> pairs = {{5, 0, 1}};
  Table t = PairsToTable(pairs);
  auto back = PairsFromTable(t, /*left_rows=*/3, /*right_rows=*/3);
  EXPECT_EQ(back.status().code(), StatusCode::kOutOfRange);
}

TEST(PairsIoTest, MissingColumnsRejected) {
  Table t("bad", Schema({"x", "y"}));
  ASSERT_TRUE(t.Append(Record({Value(0.0), Value(0.0)})).ok());
  EXPECT_FALSE(PairsFromTable(t, 1, 1).ok());
}

TEST(PairsIoTest, MissingLabelColumnMeansUnlabeled) {
  Table t("p", Schema({"ltable_id", "rtable_id"}));
  ASSERT_TRUE(t.Append(Record({Value(0.0), Value(0.0)})).ok());
  auto pairs = PairsFromTable(t, 1, 1);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ((*pairs)[0].label, -1);
}

TEST(PairsIoTest, NonNumericIdRejected) {
  Table t("p", Schema({"ltable_id", "rtable_id", "label"}));
  ASSERT_TRUE(t.Append(Record({Value("x"), Value(0.0), Value(1.0)})).ok());
  EXPECT_FALSE(PairsFromTable(t, 1, 1).ok());
}

}  // namespace
}  // namespace autoem
