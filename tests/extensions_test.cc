// Tests for the paper-§VII extension features: query strategies for active
// learning, permutation-importance explanation, SMAC warm starting, and the
// MLP warm-start mechanism they build on.
#include <gtest/gtest.h>

#include <cmath>

#include "active/active_learner.h"
#include "automl/automl_em.h"
#include "automl/explain.h"
#include "automl/smac.h"
#include "common/rng.h"
#include "ml/metrics.h"
#include "ml/models/mlp.h"

namespace autoem {
namespace {

Dataset MakePool(size_t n, uint64_t seed, double noise = 1.0) {
  Rng rng(seed);
  Dataset d;
  const size_t dims = 6;
  d.X = Matrix(n, dims);
  d.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int label = rng.Bernoulli(0.25) ? 1 : 0;
    d.y[i] = label;
    for (size_t c = 0; c < dims; ++c) {
      double center = (c < 3 && label == 1) ? 1.5 : 0.0;
      d.X.At(i, c) = rng.Normal(center, noise);
    }
  }
  for (size_t c = 0; c < dims; ++c) {
    d.feature_names.push_back("f" + std::to_string(c));
  }
  return d;
}

// ---- query strategies --------------------------------------------------------

class QueryStrategyTest : public ::testing::TestWithParam<QueryStrategy> {};

TEST_P(QueryStrategyTest, RunsWithinBudget) {
  Dataset pool = MakePool(500, 1);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options;
  options.init_size = 60;
  options.ac_batch = 10;
  options.st_batch = 30;
  options.label_budget = 120;
  options.max_iterations = 5;
  options.model.n_estimators = 15;
  options.run_automl_at_end = false;
  options.query_strategy = GetParam();
  auto result = RunAutoMlEmActive(pool, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->human_labels_used, options.label_budget);
  EXPECT_GT(result->collected.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, QueryStrategyTest,
                         ::testing::Values(QueryStrategy::kCommittee,
                                           QueryStrategy::kMargin,
                                           QueryStrategy::kRandom));

TEST(QueryStrategyTest, StrategiesSelectDifferentPairs) {
  Dataset pool = MakePool(600, 2);
  ActiveLearningOptions options;
  options.init_size = 60;
  options.ac_batch = 15;
  options.st_batch = 0;
  options.label_budget = 120;
  options.max_iterations = 4;
  options.model.n_estimators = 15;
  options.run_automl_at_end = false;
  options.seed = 3;

  auto collect = [&](QueryStrategy strategy) {
    ActiveLearningOptions arm = options;
    arm.query_strategy = strategy;
    GroundTruthOracle oracle(pool.y);
    auto result = RunAutoMlEmActive(pool, &oracle, arm);
    EXPECT_TRUE(result.ok());
    // Fingerprint the collected set by summing selected feature values.
    double fingerprint = 0.0;
    for (size_t i = 0; i < result->collected.size(); ++i) {
      fingerprint += result->collected.X.At(i, 0);
    }
    return fingerprint;
  };
  double committee = collect(QueryStrategy::kCommittee);
  double random = collect(QueryStrategy::kRandom);
  EXPECT_NE(committee, random);
}

TEST(QueryStrategyTest, UncertaintyBeatsRandomOnAverage) {
  // The fundamental active-learning property: with a small budget, querying
  // uncertain pairs wins (or at least never clearly loses) against random
  // selection, averaged over seeds.
  Dataset pool = MakePool(1500, 4, /*noise=*/1.3);
  Dataset test = MakePool(500, 5, /*noise=*/1.3);
  double committee_total = 0.0;
  double random_total = 0.0;
  for (uint64_t seed : {11, 12, 13}) {
    ActiveLearningOptions options;
    options.init_size = 40;
    options.ac_batch = 15;
    options.st_batch = 0;
    options.label_budget = 140;
    options.max_iterations = 8;
    options.model.n_estimators = 25;
    options.run_automl_at_end = false;
    options.seed = seed;
    options.query_strategy = QueryStrategy::kCommittee;
    GroundTruthOracle o1(pool.y);
    auto r1 = RunAutoMlEmActive(pool, &o1, options, &test);
    options.query_strategy = QueryStrategy::kRandom;
    GroundTruthOracle o2(pool.y);
    auto r2 = RunAutoMlEmActive(pool, &o2, options, &test);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    committee_total += r1->iterations.back().iteration_model_test_f1;
    random_total += r2->iterations.back().iteration_model_test_f1;
  }
  EXPECT_GE(committee_total, random_total - 0.05);
}

// ---- permutation importance ----------------------------------------------------

TEST(PermutationImportanceTest, InformativeFeatureRanksFirst) {
  Rng rng(6);
  Dataset d;
  d.X = Matrix(400, 3);
  d.y.resize(400);
  for (size_t i = 0; i < 400; ++i) {
    d.y[i] = i % 2;
    d.X.At(i, 0) = d.y[i] * 2.0 + rng.Normal(0, 0.4);  // signal
    d.X.At(i, 1) = rng.Normal(0, 1.0);                 // noise
    d.X.At(i, 2) = rng.Normal(0, 1.0);                 // noise
  }
  d.feature_names = {"signal", "noise_a", "noise_b"};

  auto pipeline =
      EmPipeline::Compile(DefaultEmConfiguration(ModelSpace::kAllModels));
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->Fit(d).ok());

  auto ranking = PermutationImportance(*pipeline, d, /*repeats=*/3);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].feature, "signal");
  EXPECT_GT(ranking[0].importance, 0.1);
  EXPECT_LT(std::fabs(ranking[1].importance), 0.1);
}

TEST(PermutationImportanceTest, EmptyInputsAreSafe) {
  auto pipeline =
      EmPipeline::Compile(DefaultEmConfiguration(ModelSpace::kAllModels));
  ASSERT_TRUE(pipeline.ok());
  Dataset empty;
  EXPECT_TRUE(PermutationImportance(*pipeline, empty).empty());
}

TEST(PermutationImportanceTest, FormatListsTopK) {
  std::vector<FeatureImportance> ranking = {
      {"a", 0.5}, {"b", 0.2}, {"c", 0.01}};
  std::string text = FormatImportances(ranking, 2);
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
  EXPECT_EQ(text.find(" c "), std::string::npos);
}

// ---- SMAC warm start --------------------------------------------------------------

TEST(WarmStartTest, WarmConfigIsEvaluatedFirst) {
  Dataset pool = MakePool(300, 7);
  Rng rng(8);
  SplitResult split = TrainTestSplit(pool, 0.3, &rng);
  HoldoutEvaluator evaluator(split.train, split.test);
  ConfigurationSpace space =
      BuildEmSearchSpace(ModelSpace::kRandomForestOnly);

  Configuration warm;
  warm["classifier:__choice__"] = "random_forest";
  warm["classifier:random_forest:n_estimators"] = 33;

  SmacOptions options;
  options.base.max_evaluations = 5;
  options.base.include_default = false;
  options.initial_configs = {warm};
  auto searched = SmacSearch(space, &evaluator, options);
  ASSERT_TRUE(searched.ok()) << searched.status().ToString();
  SearchOutcome outcome = std::move(*searched);
  ASSERT_FALSE(outcome.trajectory.empty());
  EXPECT_EQ(GetInt(outcome.trajectory[0].config,
                   "classifier:random_forest:n_estimators", 0),
            33);
}

TEST(WarmStartTest, BestIsAtLeastWarmConfigScore) {
  Dataset pool = MakePool(300, 9);
  AutoMlEmOptions options;
  options.max_evaluations = 6;
  options.warm_start_configs = {
      DefaultEmConfiguration(ModelSpace::kRandomForestOnly)};
  auto run = RunAutoMlEm(pool, options);
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->best_valid_f1, run->trajectory[0].valid_f1);
}

// ---- MLP warm start ------------------------------------------------------------------

TEST(MlpWarmStartTest, ResumedTrainingImprovesFit) {
  Rng rng(10);
  Matrix X(300, 4);
  std::vector<int> y(300);
  for (size_t i = 0; i < 300; ++i) {
    y[i] = i % 2;
    for (size_t c = 0; c < 4; ++c) {
      X.At(i, c) = (y[i] == 1 ? 1.2 : 0.0) + rng.Normal(0, 1.0);
    }
  }
  MlpOptions opt;
  opt.warm_start = true;
  opt.epochs = 2;
  MlpClassifier mlp(opt);
  ASSERT_TRUE(mlp.Fit(X, y).ok());
  double acc_early = Accuracy(y, mlp.Predict(X));
  for (int round = 0; round < 15; ++round) {
    ASSERT_TRUE(mlp.Fit(X, y).ok());  // resumes, does not reinitialize
  }
  double acc_late = Accuracy(y, mlp.Predict(X));
  EXPECT_GE(acc_late, acc_early);
  EXPECT_GT(acc_late, 0.7);
}

TEST(MlpWarmStartTest, ColdStartWhenDisabled) {
  // Without warm_start, two identical Fit calls give identical models.
  Rng rng(11);
  Matrix X(100, 3);
  std::vector<int> y(100);
  for (size_t i = 0; i < 100; ++i) {
    y[i] = i % 2;
    for (size_t c = 0; c < 3; ++c) {
      X.At(i, c) = y[i] + rng.Normal(0, 0.5);
    }
  }
  MlpOptions opt;
  opt.epochs = 5;
  MlpClassifier mlp(opt);
  ASSERT_TRUE(mlp.Fit(X, y).ok());
  std::vector<double> p1 = mlp.PredictProba(X);
  ASSERT_TRUE(mlp.Fit(X, y).ok());
  std::vector<double> p2 = mlp.PredictProba(X);
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);
}

}  // namespace
}  // namespace autoem
