// Model persistence (src/io): the serialization substrate, per-component
// fitted-state round-trips, the versioned container, and the end-to-end
// guarantee — a matcher loaded from disk scores pairs *bit-identically*
// (memcmp on the raw doubles) to the instance that was saved, at any thread
// count and chunk size. The corruption half goes the other way: flipped
// bytes, truncation at any offset, wrong magic, and wrong format versions
// must all degrade to a clean non-OK Status, never UB.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "automl/pipeline.h"
#include "automl/search_space.h"
#include "common/rng.h"
#include "datagen/benchmark_gen.h"
#include "em/matcher.h"
#include "features/feature_gen.h"
#include "fuzz/corpus.h"
#include "io/model_io.h"
#include "io/serialize.h"
#include "preprocess/feature_agglomeration.h"
#include "preprocess/feature_selection.h"
#include "preprocess/imputer.h"
#include "preprocess/pca.h"
#include "preprocess/scalers.h"

namespace autoem {
namespace {

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
      << what << ": payloads differ";
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t r = 0; r < a.rows(); ++r) {
    ASSERT_EQ(0,
              std::memcmp(a.RowPtr(r), b.RowPtr(r), a.cols() * sizeof(double)))
        << what << ": row " << r << " differs";
  }
}

// ---- serialization substrate ----------------------------------------------------

TEST(SerializeTest, PrimitivesRoundTrip) {
  io::Writer w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-1234567890123ll);
  w.F64(3.141592653589793);
  w.F64(-0.0);
  w.F64(std::numeric_limits<double>::infinity());
  w.Str(std::string_view("hello, \0 binary", 15));
  w.VecF64({1.5, -2.5, 0.0});
  w.VecIdx({0, 7, 123456789});

  io::Reader r(w.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  double d;
  std::string s;
  std::vector<double> vd;
  std::vector<size_t> vi;
  ASSERT_TRUE(r.U8(&u8).ok());
  EXPECT_EQ(u8, 0xAB);
  ASSERT_TRUE(r.U32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(r.U64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  ASSERT_TRUE(r.I32(&i32).ok());
  EXPECT_EQ(i32, -42);
  ASSERT_TRUE(r.I64(&i64).ok());
  EXPECT_EQ(i64, -1234567890123ll);
  ASSERT_TRUE(r.F64(&d).ok());
  EXPECT_EQ(d, 3.141592653589793);
  ASSERT_TRUE(r.F64(&d).ok());
  EXPECT_TRUE(std::signbit(d));
  EXPECT_EQ(d, 0.0);
  ASSERT_TRUE(r.F64(&d).ok());
  EXPECT_TRUE(std::isinf(d));
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_EQ(s, std::string("hello, \0 binary", 15));
  ASSERT_TRUE(r.VecF64(&vd).ok());
  EXPECT_EQ(vd, (std::vector<double>{1.5, -2.5, 0.0}));
  ASSERT_TRUE(r.VecIdx(&vi).ok());
  EXPECT_EQ(vi, (std::vector<size_t>{0, 7, 123456789}));
  EXPECT_EQ(r.remaining(), 0u);
}

// NaN payload bits must survive: the feature matrices use quiet NaN for
// missing values, and the bit-identity guarantee is memcmp-strict.
TEST(SerializeTest, NanPayloadBitsPreserved) {
  uint64_t bits = 0x7FF8DEADBEEF1234ull;  // quiet NaN with a payload
  double nan_in;
  std::memcpy(&nan_in, &bits, sizeof(nan_in));
  io::Writer w;
  w.F64(nan_in);
  io::Reader r(w.data());
  double nan_out;
  ASSERT_TRUE(r.F64(&nan_out).ok());
  EXPECT_EQ(0, std::memcmp(&nan_in, &nan_out, sizeof(nan_in)));
}

TEST(SerializeTest, EveryTruncationPrefixFailsCleanly) {
  io::Writer w;
  w.U32(7);
  w.Str("abcdef");
  w.VecF64({1.0, 2.0});
  const std::string& bytes = w.data();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    io::Reader r(std::string_view(bytes).substr(0, cut));
    uint32_t u;
    std::string s;
    std::vector<double> v;
    // Some prefix reads succeed; the sequence as a whole must fail without
    // ever touching out-of-bounds memory (tsan/asan would flag it).
    bool ok = r.U32(&u).ok() && r.Str(&s).ok() && r.VecF64(&v).ok();
    EXPECT_FALSE(ok) << "prefix " << cut << " parsed as complete";
  }
}

TEST(SerializeTest, AbsurdDeclaredLengthRejectedBeforeAllocation) {
  io::Writer w;
  w.U64(std::numeric_limits<uint64_t>::max());  // length prefix of a "vector"
  w.F64(1.0);
  io::Reader r(w.data());
  std::vector<double> v;
  Status st = r.VecF64(&v);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(v.empty());

  io::Reader r2(w.data());
  std::string s;
  EXPECT_FALSE(r2.Str(&s).ok());
}

TEST(SerializeTest, LenWithZeroElemSizeStillCapped) {
  // min_elem_size == 0 must floor to 1, not disable the cap: a corrupt
  // count near 2^64 has to fail here, before any resize() can abort.
  io::Writer w;
  w.U64(std::numeric_limits<uint64_t>::max());
  io::Reader r(w.data());
  uint64_t count = 0;
  EXPECT_FALSE(r.Len(&count, 0).ok());

  io::Writer w2;
  w2.U64(3);
  w2.U8(1);
  w2.U8(2);
  w2.U8(3);
  io::Reader r2(w2.data());
  EXPECT_TRUE(r2.Len(&count, 0).ok());  // 3 declared, 3 remaining: fine
  EXPECT_EQ(count, 3u);
}

TEST(SerializeTest, Crc32KnownVector) {
  // The standard CRC-32 check value (IEEE 802.3, reflected 0xEDB88320).
  EXPECT_EQ(io::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(io::Crc32("", 0), 0x00000000u);
  EXPECT_NE(io::Crc32("123456789"), io::Crc32("123456788"));
}

// ---- per-transform fitted-state round-trips -------------------------------------

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed,
                    bool with_nan = true) {
  Rng rng(seed);
  Matrix X(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (with_nan && rng.Bernoulli(0.05)) {
        X.At(r, c) = std::numeric_limits<double>::quiet_NaN();
      } else {
        X.At(r, c) = rng.Normal(static_cast<double>(c), 1.0 + 0.1 * c);
      }
    }
  }
  return X;
}

std::vector<int> RandomLabels(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> y(rows);
  for (auto& v : y) v = rng.Bernoulli(0.3) ? 1 : 0;
  return y;
}

/// Fits `fitted`, round-trips its state into `fresh` (same hyperparameters,
/// never fitted), and checks Apply is bit-identical on held-out data.
void CheckTransformRoundTrip(Transform* fitted, Transform* fresh,
                             bool with_nan = true) {
  // In the pipeline the imputer runs first, so NaN-intolerant transforms
  // (PCA) are exercised on dense data.
  Matrix train = RandomMatrix(120, 9, 11, with_nan);
  Matrix test = RandomMatrix(40, 9, 22, with_nan);
  std::vector<int> y = RandomLabels(120, 33);
  ASSERT_TRUE(fitted->Fit(train, y).ok()) << fitted->name();

  io::Writer w;
  ASSERT_TRUE(fitted->SaveState(&w).ok()) << fitted->name();
  io::Reader r(w.data());
  ASSERT_TRUE(fresh->LoadState(&r).ok()) << fresh->name();
  EXPECT_EQ(r.remaining(), 0u) << fresh->name() << ": trailing state bytes";

  ExpectBitIdentical(fitted->Apply(test), fresh->Apply(test),
                     fitted->name() + " round-trip");

  // Truncated state must fail cleanly, not half-load.
  for (size_t cut : {size_t{0}, w.size() / 2, w.size() - 1}) {
    if (cut >= w.size()) continue;
    io::Reader short_r(std::string_view(w.data()).substr(0, cut));
    EXPECT_FALSE(fresh->LoadState(&short_r).ok())
        << fitted->name() << ": truncation at " << cut << " accepted";
  }
}

TEST(TransformStateTest, SimpleImputerRoundTrips) {
  for (const char* strategy : {"mean", "median", "most_frequent"}) {
    SimpleImputer fitted(strategy), fresh(strategy);
    CheckTransformRoundTrip(&fitted, &fresh);
  }
}

TEST(TransformStateTest, ScalersRoundTrip) {
  {
    StandardScaler fitted, fresh;
    CheckTransformRoundTrip(&fitted, &fresh);
  }
  {
    MinMaxScaler fitted, fresh;
    CheckTransformRoundTrip(&fitted, &fresh);
  }
  {
    RobustScaler fitted(10.0, 90.0), fresh(10.0, 90.0);
    CheckTransformRoundTrip(&fitted, &fresh);
  }
}

TEST(TransformStateTest, FeatureSelectionRoundTrips) {
  {
    SelectPercentile fitted(40.0, "f_classif"), fresh(40.0, "f_classif");
    CheckTransformRoundTrip(&fitted, &fresh);
  }
  {
    SelectRates fitted(0.1, "fpr", "chi2"), fresh(0.1, "fpr", "chi2");
    CheckTransformRoundTrip(&fitted, &fresh);
  }
  {
    VarianceThreshold fitted(0.001), fresh(0.001);
    CheckTransformRoundTrip(&fitted, &fresh);
  }
}

TEST(TransformStateTest, PcaAndAgglomerationRoundTrip) {
  {
    Pca fitted(0.9), fresh(0.9);
    CheckTransformRoundTrip(&fitted, &fresh, /*with_nan=*/false);
  }
  {
    FeatureAgglomeration fitted(4), fresh(4);
    CheckTransformRoundTrip(&fitted, &fresh);
  }
}

// ---- pipeline round-trips over the component space ------------------------------

Dataset SmallEmDataset() {
  static const Dataset* cached = [] {
    auto data = GenerateBenchmarkByName("Fodors-Zagats", /*seed=*/5,
                                        /*scale=*/0.15);
    AUTOEM_CHECK(data.ok());
    AutoMlEmFeatureGenerator gen;
    AUTOEM_CHECK(gen.Plan(data->train.left, data->train.right).ok());
    return new Dataset(gen.Generate(data->train));
  }();
  return *cached;
}

Configuration PipelineConfig(const std::string& scaler,
                             const std::string& preprocessor,
                             const std::string& balancing) {
  Configuration config = DefaultEmConfiguration(ModelSpace::kRandomForestOnly);
  config["rescaling:__choice__"] = scaler;
  config["preprocessor:__choice__"] = preprocessor;
  config["balancing:strategy"] = balancing;
  config["classifier:random_forest:n_estimators"] = int64_t{10};
  if (preprocessor == "feature_agglomeration") {
    config["preprocessor:feature_agglomeration:n_clusters"] = int64_t{5};
  }
  return config;
}

void CheckPipelineRoundTrip(const Configuration& config,
                            const std::string& what) {
  Dataset train = SmallEmDataset();
  auto pipeline = EmPipeline::Compile(config);
  ASSERT_TRUE(pipeline.ok()) << what << ": " << pipeline.status().ToString();
  ASSERT_TRUE(pipeline->Fit(train).ok()) << what;

  io::Writer w;
  ASSERT_TRUE(pipeline->SaveFitted(&w).ok()) << what;
  io::Reader r(w.data());
  auto loaded = EmPipeline::LoadFitted(&r);
  ASSERT_TRUE(loaded.ok()) << what << ": " << loaded.status().ToString();
  EXPECT_EQ(r.remaining(), 0u) << what << ": trailing bytes";

  EXPECT_EQ(loaded->config(), pipeline->config()) << what;
  EXPECT_EQ(loaded->active_feature_names(), pipeline->active_feature_names())
      << what;
  ExpectBitIdentical(pipeline->PredictProba(train.X),
                     loaded->PredictProba(train.X), what);
}

TEST(PipelineStateTest, EveryScalerRoundTrips) {
  for (const char* scaler :
       {"none", "standard_scaler", "minmax_scaler", "robust_scaler"}) {
    CheckPipelineRoundTrip(
        PipelineConfig(scaler, "no_preprocessing", "weighting"),
        std::string("scaler=") + scaler);
  }
}

TEST(PipelineStateTest, EveryPreprocessorRoundTrips) {
  for (const char* preprocessor :
       {"no_preprocessing", "select_percentile_classification",
        "select_rates", "pca", "feature_agglomeration",
        "variance_threshold"}) {
    CheckPipelineRoundTrip(
        PipelineConfig("standard_scaler", preprocessor, "weighting"),
        std::string("preprocessor=") + preprocessor);
  }
}

TEST(PipelineStateTest, EveryBalancingStrategyRoundTrips) {
  for (const char* balancing : {"none", "weighting", "oversample"}) {
    CheckPipelineRoundTrip(PipelineConfig("none", "no_preprocessing",
                                          balancing),
                           std::string("balancing=") + balancing);
  }
}

// A classifier without persistence support must make SaveFitted fail
// honestly (Unimplemented), not write a partial file.
TEST(PipelineStateTest, UnsupportedClassifierRefusesToSave) {
  Dataset train = SmallEmDataset();
  Configuration config = DefaultEmConfiguration(ModelSpace::kAllModels);
  config["classifier:__choice__"] = "k_nearest_neighbors";
  auto pipeline = EmPipeline::Compile(config);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE(pipeline->Fit(train).ok());
  io::Writer w;
  Status st = pipeline->SaveFitted(&w);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
}

// ---- the container + end-to-end matcher round-trip ------------------------------

EntityMatcher TrainTinyMatcher(const BenchmarkData& data, int threads) {
  EntityMatcher::Options options;
  options.automl.max_evaluations = 2;
  options.automl.seed = 17;
  options.automl.parallelism = Parallelism::Threads(threads);
  auto matcher = EntityMatcher::Train(data.train, options);
  AUTOEM_CHECK_MSG(matcher.ok(), "tiny matcher training failed");
  return std::move(*matcher);
}

// The ISSUE acceptance bar: Save -> Load -> Predict is bit-identical on all
// eight benchmark datasets, across thread counts 1/2/8 on the loaded side.
TEST(ModelIoTest, SaveLoadPredictBitIdenticalOnAllBenchmarks) {
  for (const DatasetProfile& profile : BenchmarkProfiles()) {
    auto data = GenerateBenchmark(profile, /*seed=*/3, /*scale=*/0.05);
    ASSERT_TRUE(data.ok()) << profile.name << ": "
                           << data.status().ToString();
    EntityMatcher matcher = TrainTinyMatcher(*data, /*threads=*/1);

    auto want = matcher.ScorePairs(data->test);
    ASSERT_TRUE(want.ok()) << profile.name;

    std::string bytes;
    ASSERT_TRUE(io::SerializeModel(matcher, &bytes).ok()) << profile.name;
    for (int threads : {1, 2, 8}) {
      auto loaded = io::DeserializeModel(bytes);
      ASSERT_TRUE(loaded.ok()) << profile.name << ": "
                               << loaded.status().ToString();
      loaded->SetParallelism(Parallelism::Threads(threads));
      auto got = loaded->ScorePairs(data->test);
      ASSERT_TRUE(got.ok()) << profile.name;
      ExpectBitIdentical(*want, *got,
                         profile.name + " @" + std::to_string(threads));
      // Chunked batch scoring must agree too, including ragged tails.
      auto batched = loaded->ScorePairsBatched(data->test, /*chunk_size=*/17);
      ASSERT_TRUE(batched.ok()) << profile.name;
      ExpectBitIdentical(*want, *batched,
                         profile.name + " batched @" +
                             std::to_string(threads));
    }
  }
}

TEST(ModelIoTest, FileRoundTripThroughDisk) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", /*seed=*/9,
                                      /*scale=*/0.1);
  ASSERT_TRUE(data.ok());
  EntityMatcher matcher = TrainTinyMatcher(*data, /*threads=*/2);
  std::string path = ::testing::TempDir() + "/autoem_model_io_test.aem";
  ASSERT_TRUE(io::SaveModel(matcher, path).ok());
  auto loaded = io::LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->automl_result().best_valid_f1,
            matcher.automl_result().best_valid_f1);
  auto want = matcher.ScorePairs(data->test);
  auto got = loaded->ScorePairs(data->test);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*want, *got, "disk round-trip");
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileIsIOError) {
  auto loaded = io::LoadModel("/nonexistent/dir/model.aem");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// ---- corruption / truncation / version safety -----------------------------------

class ModelCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = GenerateBenchmarkByName("Fodors-Zagats", /*seed=*/13,
                                        /*scale=*/0.1);
    AUTOEM_CHECK(data.ok());
    EntityMatcher matcher = TrainTinyMatcher(*data, /*threads=*/1);
    bytes_ = new std::string;
    AUTOEM_CHECK(io::SerializeModel(matcher, bytes_).ok());
    AUTOEM_CHECK(io::DeserializeModel(*bytes_).ok());  // sanity: valid as-is
  }
  static void TearDownTestSuite() {
    delete bytes_;
    bytes_ = nullptr;
  }

  static std::string* bytes_;
};

std::string* ModelCorruptionTest::bytes_ = nullptr;

TEST_F(ModelCorruptionTest, EveryFlippedByteRejected) {
  // Every byte of the container is covered: the header fields by explicit
  // validation, every payload byte by its section CRC. Exhaustive over the
  // header + a stride through the payloads to keep runtime sane.
  const std::string& good = *bytes_;
  size_t checked = 0;
  for (size_t i = 0; i < good.size(); i = (i < 256 ? i + 1 : i + 211)) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    auto loaded = io::DeserializeModel(bad);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i << " accepted";
    ++checked;
  }
  EXPECT_GT(checked, 256u);
}

TEST_F(ModelCorruptionTest, EveryTruncationPointRejected) {
  const std::string& good = *bytes_;
  for (size_t len = 0; len < good.size();
       len = (len < 64 ? len + 1 : len + 197)) {
    auto loaded = io::DeserializeModel(good.substr(0, len));
    EXPECT_FALSE(loaded.ok()) << "truncation to " << len << " accepted";
    if (loaded.ok()) break;
  }
}

TEST_F(ModelCorruptionTest, WrongMagicRejected) {
  std::string bad = *bytes_;
  bad[0] = 'Z';
  auto loaded = io::DeserializeModel(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("magic"), std::string::npos);
}

TEST_F(ModelCorruptionTest, WrongFormatVersionRejected) {
  std::string bad = *bytes_;
  bad[4] = static_cast<char>(io::kModelFormatVersion + 1);  // u32 LE byte 0
  auto loaded = io::DeserializeModel(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos);
}

TEST_F(ModelCorruptionTest, TrailingGarbageRejected) {
  auto loaded = io::DeserializeModel(*bytes_ + "extra");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(ModelCorruptionTest, EmptyAndTinyInputsRejected) {
  EXPECT_FALSE(io::DeserializeModel("").ok());
  EXPECT_FALSE(io::DeserializeModel("AEMM").ok());
  EXPECT_FALSE(io::DeserializeModel(std::string("\0\0\0\0", 4)).ok());
}

// ---- corruption matrix: multi-byte + structure-aware damage ---------------
//
// The single-byte flips above prove the CRCs cover every payload byte; the
// tests below use the fuzz/corpus.h surgery helpers to apply the kinds of
// damage a single flip cannot represent: runs of flipped bytes, whole
// sections exchanged, and length fields rewritten to overflow values.

TEST_F(ModelCorruptionTest, MultiByteFlipRunsRejected) {
  const std::string& good = *bytes_;
  for (size_t run : {2u, 3u, 5u, 8u, 16u, 64u}) {
    for (size_t start = 0; start + run <= good.size();
         start += good.size() / 7 + 1) {
      std::string bad = good;
      fuzz::FlipBytes(&bad, start, run);
      EXPECT_FALSE(io::DeserializeModel(bad).ok())
          << "flip of " << run << " bytes at " << start << " accepted";
    }
  }
}

TEST_F(ModelCorruptionTest, DoubleFlipThatRestoresOneByteRejected) {
  // Flip two separate bytes of the same section: CRC32 is not fooled by
  // paired damage the way a checksum-by-sum would be.
  const std::string& good = *bytes_;
  auto sections = fuzz::ListModelSections(good);
  ASSERT_TRUE(sections.ok());
  ASSERT_FALSE(sections->empty());
  const auto& sec = sections->front();
  ASSERT_GE(sec.size, 2u);
  std::string bad = good;
  fuzz::FlipBytes(&bad, sec.payload_pos, 1);
  fuzz::FlipBytes(&bad, sec.payload_pos + sec.size - 1, 1);
  EXPECT_FALSE(io::DeserializeModel(bad).ok());
}

TEST_F(ModelCorruptionTest, SwappedSectionPayloadsRejected) {
  auto sections = fuzz::ListModelSections(*bytes_);
  ASSERT_TRUE(sections.ok());
  ASSERT_GE(sections->size(), 2u);
  for (size_t a = 0; a < sections->size(); ++a) {
    for (size_t b = a + 1; b < sections->size(); ++b) {
      std::string bad = *bytes_;
      ASSERT_TRUE(fuzz::SwapSectionPayloads(&bad, a, b).ok());
      EXPECT_FALSE(io::DeserializeModel(bad).ok())
          << "payload swap " << a << "<->" << b << " accepted";
    }
  }
}

TEST_F(ModelCorruptionTest, SwappedSectionIdsRejected) {
  // Ids swapped, payloads still attached to their own sizes and CRCs: the
  // container is structurally valid and every CRC passes, so only the deep
  // parse (section consumers) can catch it. It must.
  auto sections = fuzz::ListModelSections(*bytes_);
  ASSERT_TRUE(sections.ok());
  ASSERT_GE(sections->size(), 2u);
  for (size_t a = 0; a < sections->size(); ++a) {
    for (size_t b = a + 1; b < sections->size(); ++b) {
      std::string bad = *bytes_;
      ASSERT_TRUE(fuzz::SwapSectionIds(&bad, a, b).ok());
      EXPECT_FALSE(io::DeserializeModel(bad).ok())
          << "id swap " << a << "<->" << b << " accepted";
    }
  }
}

TEST_F(ModelCorruptionTest, LengthFieldOverflowRejected) {
  auto sections = fuzz::ListModelSections(*bytes_);
  ASSERT_TRUE(sections.ok());
  for (size_t idx = 0; idx < sections->size(); ++idx) {
    for (uint64_t evil :
         {std::numeric_limits<uint64_t>::max(),
          std::numeric_limits<uint64_t>::max() - 7,
          static_cast<uint64_t>(bytes_->size()),
          (*sections)[idx].size + 1}) {
      std::string bad = *bytes_;
      ASSERT_TRUE(fuzz::SetSectionLength(&bad, idx, evil).ok());
      EXPECT_FALSE(io::DeserializeModel(bad).ok())
          << "section " << idx << " length " << evil << " accepted";
    }
  }
}

TEST_F(ModelCorruptionTest, SyntheticEnvelopeSeedsParseStructurally) {
  // The checked-in envelope seeds must at least walk the section table
  // without UB; deep parse may reject them (payloads are synthetic).
  for (const auto& seed : fuzz::ModelEnvelopeSeeds()) {
    auto sections = fuzz::ListModelSections(seed.bytes);
    auto parsed = io::DeserializeModel(seed.bytes);
    (void)sections;
    (void)parsed;  // any Status is fine; this guards against crashes
  }
}

}  // namespace
}  // namespace autoem
