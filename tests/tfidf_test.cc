// Tests for the TF-IDF similarity model, its feature-generator integration,
// and the sorted-neighborhood blocker.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/benchmark_gen.h"
#include "em/blocking.h"
#include "features/feature_gen.h"
#include "io/serialize.h"
#include "text/tfidf.h"

namespace autoem {
namespace {

// ---- TfIdfModel ---------------------------------------------------------------

TfIdfModel MakeRestaurantCorpus() {
  TfIdfModel model(TokenizerKind::kWhitespace);
  // "restaurant" appears everywhere (low IDF); names are rare (high IDF).
  model.AddDocument("arnie mortons restaurant");
  model.AddDocument("arts deli restaurant");
  model.AddDocument("fenix restaurant");
  model.AddDocument("katsu restaurant");
  model.Fit();
  return model;
}

TEST(TfIdfTest, CommonTokensGetLowerIdf) {
  TfIdfModel model = MakeRestaurantCorpus();
  EXPECT_LT(model.Idf("restaurant"), model.Idf("fenix"));
  EXPECT_EQ(model.num_documents(), 4u);
  EXPECT_GE(model.vocabulary_size(), 7u);
}

TEST(TfIdfTest, OovTokensGetMaxObservedIdf) {
  TfIdfModel model = MakeRestaurantCorpus();
  EXPECT_DOUBLE_EQ(model.Idf("neverseen"), model.Idf("fenix"));
}

TEST(TfIdfTest, IdenticalStringsScoreOne) {
  TfIdfModel model = MakeRestaurantCorpus();
  EXPECT_NEAR(model.Similarity("arts deli restaurant",
                               "arts deli restaurant"),
              1.0, 1e-12);
  EXPECT_DOUBLE_EQ(model.Similarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(model.Similarity("fenix", ""), 0.0);
}

TEST(TfIdfTest, RareSharedTokenOutweighsCommonSharedToken) {
  TfIdfModel model = MakeRestaurantCorpus();
  // Sharing the rare "fenix" must count more than sharing the ubiquitous
  // "restaurant".
  double share_rare = model.Similarity("fenix grill", "fenix cafe");
  double share_common =
      model.Similarity("restaurant grill", "restaurant cafe");
  EXPECT_GT(share_rare, share_common);
}

TEST(TfIdfTest, SimilarityIsSymmetricAndBounded) {
  TfIdfModel model = MakeRestaurantCorpus();
  const char* samples[] = {"arts deli", "fenix restaurant", "katsu",
                           "something new entirely"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double ab = model.Similarity(a, b);
      EXPECT_NEAR(ab, model.Similarity(b, a), 1e-12);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0 + 1e-12);
    }
  }
}

TEST(TfIdfTest, RefitAfterMoreDocuments) {
  TfIdfModel model(TokenizerKind::kWhitespace);
  model.AddDocument("alpha beta");
  model.Fit();
  EXPECT_TRUE(model.fitted());
  model.AddDocument("alpha gamma");
  EXPECT_FALSE(model.fitted());  // stale until re-Fit
  model.Fit();
  EXPECT_LT(model.Idf("alpha"), model.Idf("beta"));
}

// ---- LoadState consistency checks -------------------------------------------------

// Hand-builds a serialized TF-IDF state. SaveState can only ever emit
// consistent states, so the malformed ones are assembled from raw writer
// calls — the same bytes a corrupted or adversarial model file would carry.
std::string EncodeTfIdfState(
    uint64_t num_documents, bool fitted,
    const std::vector<std::pair<std::string, uint64_t>>& vocab) {
  io::Writer w;
  w.U32(0);  // whitespace tokenizer
  w.U64(num_documents);
  w.U8(fitted ? 1 : 0);
  w.U64(vocab.size());
  for (const auto& [token, df] : vocab) {
    w.Str(token);
    w.U64(df);
  }
  return w.data();
}

Status LoadTfIdfState(const std::string& bytes, TfIdfModel* model) {
  io::Reader r(bytes);
  return model->LoadState(&r);
}

TEST(TfIdfStateTest, RoundTripPreservesScores) {
  TfIdfModel model = MakeRestaurantCorpus();
  io::Writer w;
  ASSERT_TRUE(model.SaveState(&w).ok());
  TfIdfModel loaded;
  std::string bytes = w.data();
  ASSERT_TRUE(LoadTfIdfState(bytes, &loaded).ok());
  EXPECT_EQ(loaded.num_documents(), model.num_documents());
  EXPECT_EQ(loaded.fitted(), model.fitted());
  EXPECT_DOUBLE_EQ(loaded.Similarity("arnie mortons", "mortons grill"),
                   model.Similarity("arnie mortons", "mortons grill"));
}

TEST(TfIdfStateTest, RejectsZeroDocumentFrequency) {
  TfIdfModel model;
  Status st = LoadTfIdfState(EncodeTfIdfState(3, true, {{"alpha", 0}}),
                             &model);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TfIdfStateTest, RejectsDfAboveCorpusSize) {
  TfIdfModel model;
  Status st = LoadTfIdfState(EncodeTfIdfState(2, true, {{"alpha", 5}}),
                             &model);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TfIdfStateTest, RejectsDuplicateVocabularyToken) {
  TfIdfModel model;
  Status st = LoadTfIdfState(
      EncodeTfIdfState(3, true, {{"alpha", 1}, {"alpha", 2}}), &model);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("duplicate"), std::string::npos);
}

TEST(TfIdfStateTest, RejectsFittedWithZeroDocuments) {
  TfIdfModel model;
  Status st = LoadTfIdfState(EncodeTfIdfState(0, true, {}), &model);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TfIdfStateTest, AcceptsUnfittedEmptyState) {
  TfIdfModel model;
  EXPECT_TRUE(LoadTfIdfState(EncodeTfIdfState(0, false, {}), &model).ok());
  EXPECT_FALSE(model.fitted());
  // df == num_documents is the boundary and stays legal.
  TfIdfModel full;
  EXPECT_TRUE(
      LoadTfIdfState(EncodeTfIdfState(2, true, {{"alpha", 2}}), &full).ok());
  EXPECT_TRUE(full.fitted());
}

// ---- generator integration -------------------------------------------------------

TEST(TfIdfFeatureTest, TfIdfVariantAddsFeatures) {
  Schema schema({"name"});
  Table a("A", schema);
  Table b("B", schema);
  ASSERT_TRUE(a.Append(Record({Value("arnie mortons")})).ok());
  ASSERT_TRUE(b.Append(Record({Value("arnie mortons grill")})).ok());

  AutoMlEmFeatureGenerator plain(false);
  AutoMlEmFeatureGenerator with_tfidf(true);
  ASSERT_TRUE(plain.Plan(a, b).ok());
  ASSERT_TRUE(with_tfidf.Plan(a, b).ok());
  EXPECT_EQ(with_tfidf.num_features(), plain.num_features() + 1);
  ASSERT_EQ(with_tfidf.tfidf_plans().size(), 1u);
  EXPECT_EQ(with_tfidf.tfidf_plans()[0].name, "name_tfidf_cosine_space");

  PairSet pairs{a, b, {{0, 0, 1}}};
  Dataset d = with_tfidf.Generate(pairs);
  double tfidf_value = d.X.At(0, d.num_features() - 1);
  EXPECT_GT(tfidf_value, 0.0);
  EXPECT_LE(tfidf_value, 1.0);
}

TEST(TfIdfFeatureTest, FactorySupportsTfIdfVariant) {
  auto gen = CreateFeatureGenerator("automl_em_tfidf");
  ASSERT_TRUE(gen.ok());
}

TEST(TfIdfFeatureTest, NullValuesGiveNaN) {
  Schema schema({"name"});
  Table a("A", schema);
  Table b("B", schema);
  ASSERT_TRUE(a.Append(Record({Value::Null()})).ok());
  ASSERT_TRUE(b.Append(Record({Value("x")})).ok());
  AutoMlEmFeatureGenerator gen(true);
  ASSERT_TRUE(gen.Plan(a, b).ok());
  PairSet pairs{a, b, {{0, 0, 0}}};
  Dataset d = gen.Generate(pairs);
  EXPECT_TRUE(std::isnan(d.X.At(0, d.num_features() - 1)));
}

// ---- sorted-neighborhood blocker ---------------------------------------------------

Table KeyTable(const std::string& name,
               std::initializer_list<const char*> keys) {
  Table t(name, Schema({"k"}));
  for (const char* k : keys) {
    EXPECT_TRUE(t.Append(Record({Value(k)})).ok());
  }
  return t;
}

TEST(SortedNeighborhoodTest, AdjacentKeysArePaired) {
  Table left = KeyTable("A", {"apple pie", "zebra"});
  Table right = KeyTable("B", {"apple pies", "yak"});
  SortedNeighborhoodBlocker blocker("k", /*window=*/2);
  auto pairs = blocker.Block(left, right);
  ASSERT_TRUE(pairs.ok());
  bool found = false;
  for (const auto& p : *pairs) {
    if (p.left_id == 0 && p.right_id == 0) found = true;
  }
  EXPECT_TRUE(found);  // "apple pie" ~ "apple pies" sort adjacently
}

TEST(SortedNeighborhoodTest, WindowBoundsCandidateCount) {
  Table left = KeyTable("A", {"a", "b", "c", "d", "e", "f"});
  Table right = KeyTable("B", {"a1", "b1", "c1", "d1", "e1", "f1"});
  SortedNeighborhoodBlocker narrow("k", 2);
  SortedNeighborhoodBlocker wide("k", 6);
  auto n = narrow.Block(left, right);
  auto w = wide.Block(left, right);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(w.ok());
  EXPECT_LT(n->size(), w->size());
}

TEST(SortedNeighborhoodTest, OnlyCrossSidePairsEmitted) {
  Table left = KeyTable("A", {"aa", "ab"});
  Table right = KeyTable("B", {"ba"});
  SortedNeighborhoodBlocker blocker("k", 3);
  auto pairs = blocker.Block(left, right);
  ASSERT_TRUE(pairs.ok());
  for (const auto& p : *pairs) {
    EXPECT_LT(p.left_id, left.num_rows());
    EXPECT_LT(p.right_id, right.num_rows());
  }
}

TEST(SortedNeighborhoodTest, ErrorsOnBadInputs) {
  Table left = KeyTable("A", {"x"});
  Table right = KeyTable("B", {"y"});
  EXPECT_FALSE(SortedNeighborhoodBlocker("missing", 3)
                   .Block(left, right)
                   .ok());
  EXPECT_FALSE(SortedNeighborhoodBlocker("k", 0).Block(left, right).ok());
}

TEST(SortedNeighborhoodTest, HighRecallOnGeneratedRestaurants) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 3, 0.3);
  ASSERT_TRUE(data.ok());
  SortedNeighborhoodBlocker blocker("name", 12);
  auto candidates = blocker.Block(data->train.left, data->train.right);
  ASSERT_TRUE(candidates.ok());
  EXPECT_GT(BlockingRecall(*candidates, data->train.pairs), 0.7);
}

}  // namespace
}  // namespace autoem
