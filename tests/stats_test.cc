#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/stats.h"

namespace autoem {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---- NaN-aware descriptive stats ----------------------------------------------

TEST(NanStatsTest, MeanSkipsNaN) {
  EXPECT_DOUBLE_EQ(NanMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(NanMean({1.0, kNaN, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(NanMean({kNaN}), 0.0);
  EXPECT_DOUBLE_EQ(NanMean({}), 0.0);
}

TEST(NanStatsTest, VarianceSkipsNaN) {
  EXPECT_DOUBLE_EQ(NanVariance({2.0, 2.0, 2.0}), 0.0);
  EXPECT_NEAR(NanVariance({1.0, kNaN, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(NanVariance({5.0}), 0.0);
}

TEST(NanStatsTest, QuantileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(NanQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(NanQuantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(NanQuantile(v, 0.5), 2.5);
  EXPECT_NEAR(NanQuantile(v, 0.25), 1.75, 1e-12);
}

TEST(NanStatsTest, QuantileSkipsNaNAndHandlesEmpty) {
  EXPECT_DOUBLE_EQ(NanQuantile({kNaN, 2.0, kNaN, 4.0}, 0.5), 3.0);
  EXPECT_TRUE(std::isnan(NanQuantile({kNaN, kNaN}, 0.5)));
}

// ---- special functions ------------------------------------------------------------

TEST(SpecialFunctionsTest, GammaPQComplementary) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(SpecialFunctionsTest, GammaPKnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(SpecialFunctionsTest, IncompleteBetaEdges) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x (uniform CDF).
  for (double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(SpecialFunctionsTest, ChiSquaredSfKnownValues) {
  // Chi-squared with 1 df: P(X > 3.841) ~= 0.05.
  EXPECT_NEAR(ChiSquaredSf(3.841, 1.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquaredSf(6.635, 1.0), 0.01, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquaredSf(0.0, 1.0), 1.0);
}

TEST(SpecialFunctionsTest, FDistSfKnownValues) {
  // F(1, 10): P(X > 4.965) ~= 0.05.
  EXPECT_NEAR(FDistSf(4.965, 1.0, 10.0), 0.05, 2e-3);
  EXPECT_DOUBLE_EQ(FDistSf(0.0, 1.0, 10.0), 1.0);
}

// ---- feature scores ------------------------------------------------------------------

Matrix MakeMatrix(const std::vector<std::vector<double>>& rows) {
  Matrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

TEST(AnovaFTest, DiscriminativeFeatureScoresHigher) {
  // Feature 0 separates classes; feature 1 is noise.
  Matrix X = MakeMatrix({{1.0, 0.3},
                         {1.1, 0.8},
                         {0.9, 0.5},
                         {0.1, 0.4},
                         {0.2, 0.7},
                         {0.0, 0.6}});
  std::vector<int> y = {1, 1, 1, 0, 0, 0};
  std::vector<double> p;
  std::vector<double> scores = AnovaFScores(X, y, &p);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[0], 0.05);
}

TEST(AnovaFTest, ConstantFeatureScoresZero) {
  Matrix X = MakeMatrix({{5.0}, {5.0}, {5.0}, {5.0}});
  std::vector<int> y = {1, 1, 0, 0};
  std::vector<double> scores = AnovaFScores(X, y);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

TEST(AnovaFTest, PerfectSeparatorGetsLargeFiniteScore) {
  Matrix X = MakeMatrix({{1.0}, {1.0}, {0.0}, {0.0}});
  std::vector<int> y = {1, 1, 0, 0};
  std::vector<double> scores = AnovaFScores(X, y);
  EXPECT_GT(scores[0], 1e6);
  EXPECT_TRUE(std::isfinite(scores[0]));
}

TEST(AnovaFTest, NaNCellsSkipped) {
  Matrix X = MakeMatrix({{1.0}, {kNaN}, {0.9}, {0.1}, {0.0}, {kNaN}});
  std::vector<int> y = {1, 1, 1, 0, 0, 0};
  std::vector<double> scores = AnovaFScores(X, y);
  EXPECT_GT(scores[0], 0.0);
  EXPECT_TRUE(std::isfinite(scores[0]));
}

TEST(Chi2Test, DiscriminativeFeatureScoresHigher) {
  Matrix X = MakeMatrix({{1.0, 0.5},
                         {1.0, 0.4},
                         {0.9, 0.6},
                         {0.0, 0.5},
                         {0.1, 0.4},
                         {0.0, 0.6}});
  std::vector<int> y = {1, 1, 1, 0, 0, 0};
  std::vector<double> p;
  std::vector<double> scores = Chi2Scores(X, y, &p);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(Chi2Test, SingleClassYieldsZeros) {
  Matrix X = MakeMatrix({{1.0}, {0.0}});
  std::vector<int> y = {1, 1};
  std::vector<double> scores = Chi2Scores(X, y);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

TEST(PearsonTest, KnownCorrelations) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  std::vector<double> c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  std::vector<double> constant = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, constant), 0.0);
}

// ---- metrics ---------------------------------------------------------------------------

TEST(MetricsTest, ConfusionCounts) {
  std::vector<int> truth = {1, 1, 0, 0, 1};
  std::vector<int> pred = {1, 0, 0, 1, 1};
  ConfusionCounts c = Confusion(truth, pred);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
}

TEST(MetricsTest, PrecisionRecallF1) {
  std::vector<int> truth = {1, 1, 0, 0, 1};
  std::vector<int> pred = {1, 0, 0, 1, 1};
  EXPECT_NEAR(Precision(truth, pred), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Recall(truth, pred), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(F1Score(truth, pred), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, F1IsHarmonicMean) {
  // precision 1.0, recall 0.5 -> F1 = 2/3.
  std::vector<int> truth = {1, 1, 0};
  std::vector<int> pred = {1, 0, 0};
  EXPECT_NEAR(F1Score(truth, pred), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0, 0}), 0.0);     // no positives at all
  EXPECT_DOUBLE_EQ(F1Score({1, 1}, {0, 0}), 0.0);     // nothing predicted
  EXPECT_DOUBLE_EQ(Precision({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Recall({0, 0}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(F1Score({1, 1}, {1, 1}), 1.0);     // perfect
}

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 0, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, RocAucPerfectAndRandom) {
  std::vector<int> y = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(y, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc(y, {0.9, 0.8, 0.2, 0.1}), 0.0);
  EXPECT_DOUBLE_EQ(RocAuc(y, {0.5, 0.5, 0.5, 0.5}), 0.5);  // all tied
  EXPECT_DOUBLE_EQ(RocAuc({1, 1}, {0.3, 0.7}), 0.5);       // one class
}

// ---- dataset / splits -------------------------------------------------------------------

TEST(DatasetTest, MatrixSelect) {
  Matrix m = MakeMatrix({{1, 2}, {3, 4}, {5, 6}});
  Matrix rows = m.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(rows.At(0, 0), 5);
  EXPECT_DOUBLE_EQ(rows.At(1, 1), 2);
  Matrix cols = m.SelectCols({1});
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_DOUBLE_EQ(cols.At(2, 0), 6);
}

Dataset MakeDataset(size_t n, size_t n_pos) {
  Dataset d;
  d.X = Matrix(n, 2);
  d.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    d.y[i] = i < n_pos ? 1 : 0;
    d.X.At(i, 0) = static_cast<double>(i);
    d.X.At(i, 1) = d.y[i];
  }
  d.feature_names = {"f0", "f1"};
  return d;
}

TEST(DatasetTest, StratifiedSplitPreservesClassRatio) {
  Dataset d = MakeDataset(100, 20);
  Rng rng(9);
  SplitResult split = TrainTestSplit(d, 0.25, &rng, /*stratified=*/true);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  EXPECT_EQ(split.test.NumPositives(), 5u);
  EXPECT_EQ(split.train.NumPositives(), 15u);
}

TEST(DatasetTest, SplitPartitionsRows) {
  Dataset d = MakeDataset(50, 10);
  Rng rng(10);
  SplitResult split = TrainTestSplit(d, 0.2, &rng);
  std::set<double> seen;
  for (size_t i = 0; i < split.train.size(); ++i) {
    seen.insert(split.train.X.At(i, 0));
  }
  for (size_t i = 0; i < split.test.size(); ++i) {
    EXPECT_EQ(seen.count(split.test.X.At(i, 0)), 0u);
    seen.insert(split.test.X.At(i, 0));
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(DatasetTest, ThreeWaySplitSizes) {
  Dataset d = MakeDataset(100, 30);
  Rng rng(11);
  // Paper protocol: 3/5 train, 1/5 valid, 1/5 test.
  ThreeWaySplit split = TrainValidTestSplit(d, 0.2, 0.2, &rng);
  EXPECT_NEAR(static_cast<double>(split.test.size()), 20.0, 2.0);
  EXPECT_NEAR(static_cast<double>(split.valid.size()), 20.0, 2.0);
  EXPECT_NEAR(static_cast<double>(split.train.size()), 60.0, 3.0);
  EXPECT_EQ(split.train.size() + split.valid.size() + split.test.size(),
            100u);
}

TEST(DatasetTest, SplitIsDeterministicGivenSeed) {
  Dataset d = MakeDataset(40, 10);
  Rng rng1(42);
  Rng rng2(42);
  SplitResult s1 = TrainTestSplit(d, 0.3, &rng1);
  SplitResult s2 = TrainTestSplit(d, 0.3, &rng2);
  ASSERT_EQ(s1.test.size(), s2.test.size());
  for (size_t i = 0; i < s1.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.test.X.At(i, 0), s2.test.X.At(i, 0));
  }
}

}  // namespace
}  // namespace autoem
