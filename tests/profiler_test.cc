// Tests for the sampling CPU profiler (obs v3). The interesting properties
// are the ones a crash or a wrong count would betray:
//  * the SIGPROF handler is async-signal-safe even when the interrupted
//    code is allocating (the ASan preset runs this binary, so a malloc
//    re-entered from the handler would abort loudly);
//  * the pre-allocated ring drops excess samples *exactly* — captured
//    samples never exceed capacity and the remainder is counted;
//  * samples are attributed to the innermost active obs::Span;
//  * collapsed-stack output is a pure function of the sample multiset.
//
// Each TEST runs as its own ctest process (gtest_discover_tests), so the
// process-global profiler state starts fresh per test.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace autoem {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Spins real CPU for ~`ms` milliseconds of wall time. The work is a mix of
// arithmetic and heap churn so SIGPROF lands inside malloc/free some of the
// time — exactly the re-entrancy a broken handler would trip over.
void BurnCpu(int ms, bool allocate) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  volatile double sink = 0.0;
  std::vector<std::string> churn;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
    if (allocate) {
      churn.emplace_back(64, 'x');
      if (churn.size() > 256) churn.clear();
    }
  }
}

// ---- collapse determinism (no profile run needed) -------------------------

TEST(ProfilerCollapseTest, MergeIsOrderIndependentAndSorted) {
  using Stack = std::pair<std::vector<std::string>, uint64_t>;
  Stack a{{"spanA", "main", "Fit"}, 3};
  Stack b{{"spanA", "main", "Predict"}, 1};
  Stack c{{"spanB", "main"}, 2};
  Stack a2{{"spanA", "main", "Fit"}, 4};  // same stack, merges with `a`

  std::string one = obs::internal::CollapseSymbolizedStacks({a, b, c, a2});
  std::string two = obs::internal::CollapseSymbolizedStacks({c, a2, b, a});
  EXPECT_EQ(one, two) << "collapse must be a pure function of the multiset";

  EXPECT_NE(one.find("spanA;main;Fit 7\n"), std::string::npos) << one;
  EXPECT_NE(one.find("spanA;main;Predict 1\n"), std::string::npos) << one;
  EXPECT_NE(one.find("spanB;main 2\n"), std::string::npos) << one;

  // Lines come out sorted, so diffing two profiles is meaningful.
  std::vector<std::string> lines;
  std::istringstream stream(one);
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end())) << one;
}

TEST(ProfilerCollapseTest, EmptyInputIsEmptyOutput) {
  EXPECT_EQ(obs::internal::CollapseSymbolizedStacks({}), "");
}

// ---- disabled-profiler guarantees -----------------------------------------

TEST(ProfilerTest, OffByDefaultAndSpansStayOutOfTheStack) {
  EXPECT_FALSE(obs::ProfilingEnabled());
  {
    obs::Span span("prof_guard_span");
    // With profiling off, Span must not touch the attribution stack.
    EXPECT_EQ(obs::internal::ProfilerSpanDepth(), 0);
  }
  EXPECT_EQ(obs::internal::ProfilerSpanDepth(), 0);
  EXPECT_EQ(obs::ProfileSampleCount(), 0u);
  EXPECT_EQ(obs::ProfileDroppedSamples(), 0u);
  obs::StopProfiling();  // no-op when not profiling
  EXPECT_EQ(obs::CollapseProfile(), "");
}

// ---- live capture ----------------------------------------------------------

// Allocation-heavy multi-threaded workload sampled at a high rate. Under the
// ASan preset this is the signal-safety smoke: thousands of SIGPROFs land
// mid-malloc across four pool workers and the handler must neither allocate
// nor deadlock. (ThreadPool workers self-register via ProfiledThreadScope.)
TEST(ProfilerTest, CapturesSamplesUnderAllocationHeavyLoad) {
  obs::ProfilerOptions options;
  options.hz = 997.0;
  ASSERT_TRUE(obs::StartProfiling(options));
  EXPECT_TRUE(obs::ProfilingEnabled());
  EXPECT_FALSE(obs::StartProfiling(options)) << "double-start must refuse";

  {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 4; ++i) {
      pool.Submit([&done] {
        BurnCpu(150, /*allocate=*/true);
        done.fetch_add(1);
      });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), 4);
  }
  BurnCpu(100, /*allocate=*/true);  // main thread is registered too
  obs::StopProfiling();
  EXPECT_FALSE(obs::ProfilingEnabled());

  uint64_t samples = obs::ProfileSampleCount();
  EXPECT_GT(samples, 0u) << "no samples captured from ~700ms of CPU burn";
  std::vector<obs::RawProfileSample> raw = obs::SnapshotProfileSamples();
  EXPECT_EQ(raw.size(), samples);
  for (const obs::RawProfileSample& sample : raw) {
    EXPECT_FALSE(sample.pcs.empty());
  }

  // Stopping folds totals into the metrics registry.
  EXPECT_GE(
      obs::MetricsRegistry::Global().GetCounter("profile.samples")->Total(),
      samples);

  // The collapsed profile round-trips through WriteProfile and is
  // deterministic for the captured buffer.
  std::string collapsed = obs::CollapseProfile();
  EXPECT_FALSE(collapsed.empty());
  EXPECT_EQ(collapsed, obs::CollapseProfile());
  std::string path = TempPath("autoem_profiler_smoke.folded");
  ASSERT_TRUE(obs::WriteProfile(path));
  std::ifstream in(path);
  std::stringstream read;
  read << in.rdbuf();
  EXPECT_EQ(read.str(), collapsed);
  std::remove(path.c_str());
}

// A 16-slot ring against ~400ms of sampling at ~1kHz: the ring must clamp
// captured samples at exactly its capacity and count every tick beyond it.
TEST(ProfilerTest, RingOverflowDropsBeyondCapacityExactly) {
  obs::ProfilerOptions options;
  options.hz = 997.0;
  options.max_samples = 16;
  ASSERT_TRUE(obs::StartProfiling(options));
  BurnCpu(400, /*allocate=*/false);
  obs::StopProfiling();

  EXPECT_EQ(obs::ProfileSampleCount(), 16u)
      << "ring did not fill; dropped=" << obs::ProfileDroppedSamples();
  EXPECT_GT(obs::ProfileDroppedSamples(), 0u);
  EXPECT_EQ(obs::SnapshotProfileSamples().size(), 16u);
}

// Two spans burn CPU back to back; the profile must attribute samples to
// each, and the innermost span must win for nested scopes.
TEST(ProfilerTest, AttributesSamplesToInnermostSpan) {
  obs::ProfilerOptions options;
  options.hz = 997.0;
  ASSERT_TRUE(obs::StartProfiling(options));
  {
    obs::Span span("prof_attr_a");
    EXPECT_EQ(obs::internal::ProfilerSpanDepth(), 1);
    BurnCpu(200, /*allocate=*/false);
  }
  {
    obs::Span outer("prof_attr_outer");
    obs::Span inner("prof_attr_b");
    EXPECT_EQ(obs::internal::ProfilerSpanDepth(), 2);
    BurnCpu(200, /*allocate=*/false);
  }
  EXPECT_EQ(obs::internal::ProfilerSpanDepth(), 0);
  obs::StopProfiling();

  uint64_t in_a = 0, in_b = 0, in_outer = 0;
  for (const obs::SpanCpuShare& share : obs::ProfileSpanBreakdown()) {
    if (share.span == "prof_attr_a") in_a = share.samples;
    if (share.span == "prof_attr_b") in_b = share.samples;
    if (share.span == "prof_attr_outer") in_outer = share.samples;
  }
  EXPECT_GT(in_a, 0u) << "no samples attributed to prof_attr_a";
  EXPECT_GT(in_b, 0u) << "no samples attributed to prof_attr_b";
  // The outer span was never the innermost scope while CPU burned.
  EXPECT_EQ(in_outer, 0u);

  // The span is the root frame of every collapsed line it appears in.
  std::string collapsed = obs::CollapseProfile();
  EXPECT_NE(collapsed.find("prof_attr_a;"), std::string::npos);
  EXPECT_NE(collapsed.find("prof_attr_b;"), std::string::npos);
  for (const char* name : {"prof_attr_a", "prof_attr_b"}) {
    std::istringstream stream(collapsed);
    for (std::string line; std::getline(stream, line);) {
      size_t at = line.find(name);
      if (at != std::string::npos) {
        EXPECT_EQ(at, 0u) << line;
      }
    }
  }

  // StopProfiling exported the per-span gauges.
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetGauge("profile.span_samples.prof_attr_a")
                ->Value(),
            static_cast<double>(in_a));
}

// Restarting replaces the previous capture: counters reset, the old buffer
// is retired, and the new run's samples stand alone.
TEST(ProfilerTest, RestartResetsCounters) {
  obs::ProfilerOptions options;
  options.hz = 997.0;
  ASSERT_TRUE(obs::StartProfiling(options));
  BurnCpu(120, /*allocate=*/false);
  obs::StopProfiling();
  uint64_t first = obs::ProfileSampleCount();
  EXPECT_GT(first, 0u);

  ASSERT_TRUE(obs::StartProfiling(options));
  uint64_t at_start = obs::ProfileSampleCount();
  EXPECT_LT(at_start, first) << "restart must begin a fresh ring";
  obs::StopProfiling();
}

// The watcher backend (the portable fallback) must deliver samples too.
TEST(ProfilerTest, WatcherBackendCapturesSamples) {
  obs::ProfilerOptions options;
  options.hz = 997.0;
  options.force_watcher = true;
  ASSERT_TRUE(obs::StartProfiling(options));
  BurnCpu(300, /*allocate=*/true);
  obs::StopProfiling();
  EXPECT_GT(obs::ProfileSampleCount(), 0u);
}

}  // namespace
}  // namespace autoem
