// Tests for configuration persistence (save/load winning pipelines) and the
// k-fold cross-validation evaluator.
#include <gtest/gtest.h>

#include "automl/config_io.h"
#include "automl/evaluator.h"
#include "automl/search_space.h"
#include "common/rng.h"
#include "io/serialize.h"

namespace autoem {
namespace {

// ---- serialization -------------------------------------------------------------

TEST(ConfigIoTest, RoundTripsTypedValues) {
  Configuration config;
  config["classifier:__choice__"] = "random_forest";
  config["classifier:random_forest:max_features"] = 0.375;
  config["classifier:random_forest:n_estimators"] = 100;
  config["classifier:random_forest:bootstrap"] = true;
  std::string text = SerializeConfiguration(config);
  auto back = ParseConfiguration(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, config);
}

TEST(ConfigIoTest, RoundTripsEverySampledConfiguration) {
  ConfigurationSpace space = BuildEmSearchSpace(ModelSpace::kAllModels);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Configuration config = space.Sample(&rng);
    auto back = ParseConfiguration(SerializeConfiguration(config));
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->size(), config.size());
    for (const auto& [key, value] : config) {
      ASSERT_TRUE(back->count(key)) << key;
      if (value.is_double()) {
        EXPECT_DOUBLE_EQ(back->at(key).AsDouble(), value.AsDouble()) << key;
      } else {
        EXPECT_EQ(back->at(key), value) << key;
      }
    }
  }
}

TEST(ConfigIoTest, QuotedStringsWithEmbeddedQuotes) {
  Configuration config;
  config["note"] = "it's 'quoted'";
  auto back = ParseConfiguration(SerializeConfiguration(config));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->at("note").AsString(), "it's 'quoted'");
}

TEST(ConfigIoTest, CommentsAndBlankLinesIgnored) {
  auto config = ParseConfiguration(
      "# header comment\n\nkey = 'value'\n\n# trailing\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->size(), 1u);
  EXPECT_EQ(config->at("key").AsString(), "value");
}

TEST(ConfigIoTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseConfiguration("just some text\n").ok());
  EXPECT_FALSE(ParseConfiguration("key = \n").ok());
  EXPECT_FALSE(ParseConfiguration("key = 'unterminated\n").ok());
  EXPECT_FALSE(ParseConfiguration("key = not@a@value\n").ok());
  EXPECT_FALSE(ParseConfiguration(" = 'value'\n").ok());
}

// ---- fuzzer-found regressions --------------------------------------------------
//
// Minimized reproducers promoted from fuzz/config_io_fuzzer.cc findings.
// Each of these crashed the round-trip invariant (parse -> serialize ->
// parse must be the identity) before the ReadValue/RenderValue fixes.

TEST(ConfigIoTest, NegativeZeroStaysADouble) {
  // -0.0 used to render via %.17g as "-0", which reparsed as int64 0 —
  // a silent type flip that broke Configuration equality and hashing.
  auto config = ParseConfiguration("b = -0.0\n");
  ASSERT_TRUE(config.ok());
  ASSERT_TRUE(config->at("b").is_double());
  auto again = ParseConfiguration(SerializeConfiguration(*config));
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again->at("b").is_double()) << "type flipped to int";
  EXPECT_EQ(*again, *config);
  EXPECT_EQ(ConfigurationHash(*again), ConfigurationHash(*config));
}

TEST(ConfigIoTest, IntegralDoublesStayDoubles) {
  Configuration config;
  config["x"] = 2.0;
  config["y"] = -13.0;
  auto again = ParseConfiguration(SerializeConfiguration(config));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->at("x").is_double());
  EXPECT_TRUE(again->at("y").is_double());
  EXPECT_EQ(*again, config);
}

TEST(ConfigIoTest, EmbeddedNulInValueRejected) {
  // "1\0junk" used to parse as the integer 1 (strtoll stopped at the NUL
  // and the '\0' full-consumption check could not see the rest).
  EXPECT_FALSE(ParseConfiguration(std::string("k = 1\0junk\n", 11)).ok());
  EXPECT_FALSE(ParseConfiguration(std::string("k = 1.5\0x\n", 10)).ok());
}

TEST(ConfigIoTest, IntegerOverflowFallsBackToDouble) {
  // Beyond-int64 literals used to clamp silently to LLONG_MAX (unchecked
  // ERANGE). They now reparse as doubles instead of lying about the value.
  auto config = ParseConfiguration("big = 99999999999999999999\n");
  ASSERT_TRUE(config.ok());
  ASSERT_TRUE(config->at("big").is_double());
  EXPECT_DOUBLE_EQ(config->at("big").AsDouble(), 1e20);
  // INT64_MAX itself still fits and stays an integer.
  auto edge = ParseConfiguration("edge = 9223372036854775807\n");
  ASSERT_TRUE(edge.ok());
  ASSERT_TRUE(edge->at("edge").is_int());
}

TEST(ConfigIoTest, BinaryCodecRejectsNonFiniteDoubles) {
  // Fuzzer-found: a crafted binary stream carrying a NaN double parsed
  // fine, and the resulting Configuration was not equal to itself.
  io::Writer w;
  Configuration config;
  config["k"] = 0.5;
  WriteConfigurationBinary(&w, config);
  std::string bytes = w.data();
  // The final 8 bytes are the f64 payload; overwrite with all-ones (NaN).
  for (size_t i = bytes.size() - 8; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xFF);
  }
  io::Reader r(bytes);
  Configuration parsed;
  Status st = ReadConfigurationBinary(&r, &parsed);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("non-finite"), std::string::npos);
}

TEST(ConfigIoTest, NonFiniteDoublesRejected) {
  // inf/nan round-trip poorly (NaN != NaN breaks equality; 1e999 clamps);
  // hyperparameters are finite by construction, so the parser refuses.
  EXPECT_FALSE(ParseConfiguration("v = nan\n").ok());
  EXPECT_FALSE(ParseConfiguration("v = inf\n").ok());
  EXPECT_FALSE(ParseConfiguration("v = -inf\n").ok());
  EXPECT_FALSE(ParseConfiguration("v = 1e999\n").ok());
}

TEST(ConfigIoTest, FileRoundTrip) {
  Configuration config = DefaultEmConfiguration(ModelSpace::kAllModels);
  std::string path = ::testing::TempDir() + "/autoem_config_test.txt";
  ASSERT_TRUE(SaveConfiguration(config, path).ok());
  auto back = LoadConfiguration(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->at("classifier:__choice__").AsString(), "random_forest");
}

TEST(ConfigIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadConfiguration("/nonexistent/config.txt").ok());
}

// ---- cross-validation ------------------------------------------------------------

Dataset MakeLearnable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.X = Matrix(n, 4);
  d.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    d.y[i] = rng.Bernoulli(0.3) ? 1 : 0;
    for (size_t c = 0; c < 4; ++c) {
      d.X.At(i, c) = (d.y[i] == 1 ? 1.5 : 0.0) + rng.Normal(0, 0.8);
    }
  }
  d.feature_names = {"a", "b", "c", "d"};
  return d;
}

TEST(CrossValidationTest, LearnableDataScoresHigh) {
  Dataset d = MakeLearnable(300, 2);
  auto f1 = CrossValidatedF1(DefaultEmConfiguration(ModelSpace::kAllModels),
                             d, /*folds=*/4, /*seed=*/3);
  ASSERT_TRUE(f1.ok()) << f1.status().ToString();
  EXPECT_GT(*f1, 0.7);
  EXPECT_LE(*f1, 1.0);
}

TEST(CrossValidationTest, AgreesRoughlyWithHoldout) {
  Dataset d = MakeLearnable(400, 4);
  Configuration config = DefaultEmConfiguration(ModelSpace::kAllModels);
  auto cv = CrossValidatedF1(config, d, 5, 5);
  ASSERT_TRUE(cv.ok());
  Rng rng(6);
  SplitResult split = TrainTestSplit(d, 0.25, &rng);
  HoldoutEvaluator evaluator(split.train, split.test);
  double holdout = evaluator.Evaluate(config).valid_f1;
  EXPECT_NEAR(*cv, holdout, 0.15);
}

TEST(CrossValidationTest, InvalidInputsRejected) {
  Dataset d = MakeLearnable(20, 7);
  Configuration config = DefaultEmConfiguration(ModelSpace::kAllModels);
  EXPECT_FALSE(CrossValidatedF1(config, d, 1, 1).ok());
  Dataset tiny = MakeLearnable(3, 8);
  EXPECT_FALSE(CrossValidatedF1(config, tiny, 5, 1).ok());
}

TEST(CrossValidationTest, DeterministicGivenSeed) {
  Dataset d = MakeLearnable(200, 9);
  Configuration config = DefaultEmConfiguration(ModelSpace::kAllModels);
  auto a = CrossValidatedF1(config, d, 3, 11);
  auto b = CrossValidatedF1(config, d, 3, 11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST(CrossValidationTest, BadConfigPropagatesError) {
  Dataset d = MakeLearnable(50, 10);
  Configuration config;
  config["classifier:__choice__"] = "bogus";
  EXPECT_FALSE(CrossValidatedF1(config, d, 3, 1).ok());
}

}  // namespace
}  // namespace autoem
