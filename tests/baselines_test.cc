#include <gtest/gtest.h>

#include "baselines/deep_matcher.h"
#include "baselines/magellan_matcher.h"
#include "datagen/benchmark_gen.h"

namespace autoem {
namespace {

// ---- Magellan baseline -----------------------------------------------------------

TEST(MagellanMatcherTest, TrainsAndPicksAModel) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 1, 0.4);
  ASSERT_TRUE(data.ok());
  MagellanMatcher::Options options;
  auto matcher = MagellanMatcher::Train(data->train, options);
  ASSERT_TRUE(matcher.ok()) << matcher.status().ToString();
  EXPECT_FALSE(matcher->best_model_name().empty());
  EXPECT_GE(matcher->valid_f1(), 0.0);
  // Every offered model got a validation score.
  EXPECT_GE(matcher->model_scores().size(), 3u);
}

TEST(MagellanMatcherTest, DecentF1OnEasyData) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 2, 0.4);
  ASSERT_TRUE(data.ok());
  MagellanMatcher::Options options;
  auto matcher = MagellanMatcher::Train(data->train, options);
  ASSERT_TRUE(matcher.ok());
  auto report = matcher->Evaluate(data->test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->f1, 0.75);
}

TEST(MagellanMatcherTest, BestModelMaximizesValidationScore) {
  auto data = GenerateBenchmarkByName("iTunes-Amazon", 3, 0.5);
  ASSERT_TRUE(data.ok());
  MagellanMatcher::Options options;
  auto matcher = MagellanMatcher::Train(data->train, options);
  ASSERT_TRUE(matcher.ok());
  for (const auto& [name, f1] : matcher->model_scores()) {
    EXPECT_LE(f1, matcher->valid_f1() + 1e-12) << name;
  }
}

TEST(MagellanMatcherTest, CustomModelListHonored) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 4, 0.2);
  ASSERT_TRUE(data.ok());
  MagellanMatcher::Options options;
  options.models = {"decision_tree"};
  auto matcher = MagellanMatcher::Train(data->train, options);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ(matcher->best_model_name(), "decision_tree");
}

TEST(MagellanMatcherTest, EmptyInputsRejected) {
  PairSet empty;
  MagellanMatcher::Options options;
  EXPECT_FALSE(MagellanMatcher::Train(empty, options).ok());
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 5, 0.1);
  ASSERT_TRUE(data.ok());
  options.models = {};
  EXPECT_FALSE(MagellanMatcher::Train(data->train, options).ok());
}

// ---- DeepMatcher stand-in ----------------------------------------------------------

TEST(DeepMatcherTest, RepresentationDimMatchesFormula) {
  auto data = GenerateBenchmarkByName("Abt-Buy", 6, 0.1);
  ASSERT_TRUE(data.ok());
  DeepMatcherModel::Options options;
  options.embedding_dim = 16;
  options.epochs = 5;
  auto model = DeepMatcherModel::Train(data->train, options);
  ASSERT_TRUE(model.ok());
  // 3 attributes * 2 token families * (2 compositions * 16 dims + 2
  // summary scalars).
  EXPECT_EQ(model->representation_dim(), 3u * 2u * (2u * 16u + 2u));
  // The dev-tuned threshold is a valid probability.
  EXPECT_GT(model->tuned_threshold(), 0.0);
  EXPECT_LT(model->tuned_threshold(), 1.0);
}

TEST(DeepMatcherTest, LearnsEasyBenchmark) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 7, 0.4);
  ASSERT_TRUE(data.ok());
  DeepMatcherModel::Options options;
  options.epochs = 50;
  auto model = DeepMatcherModel::Train(data->train, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto report = model->Evaluate(data->test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->f1, 0.6);
}

TEST(DeepMatcherTest, ScoresAreProbabilities) {
  auto data = GenerateBenchmarkByName("iTunes-Amazon", 8, 0.3);
  ASSERT_TRUE(data.ok());
  DeepMatcherModel::Options options;
  options.epochs = 10;
  auto model = DeepMatcherModel::Train(data->train, options);
  ASSERT_TRUE(model.ok());
  auto scores = model->ScorePairs(data->test);
  ASSERT_TRUE(scores.ok());
  for (double s : *scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(DeepMatcherTest, EmptyTrainingRejected) {
  PairSet empty;
  DeepMatcherModel::Options options;
  EXPECT_FALSE(DeepMatcherModel::Train(empty, options).ok());
}

}  // namespace
}  // namespace autoem
