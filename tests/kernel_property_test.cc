// Differential and property tests for the fast similarity kernels and the
// flattened forest traversal (DESIGN.md §13). The scalar reference kernels
// under `autoem::reference` and the per-tree node walks are the oracles;
// every fast path must agree *exactly* — bit-identical doubles, equal
// integers — on random and hostile inputs. These tests are what license
// future rewrites of the fast paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "ml/models/decision_tree.h"
#include "ml/models/flat_forest.h"
#include "ml/models/random_forest.h"
#include "text/interner.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace autoem {
namespace {

// ---- input generators -------------------------------------------------------

std::string RandomString(Rng* rng, size_t len, int alphabet) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->UniformIndex(alphabet)));
  }
  return s;
}

std::string RandomBytes(Rng* rng, size_t len) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->UniformIndex(256)));
  }
  return s;
}

// Hostile inputs: empties, embedded NULs, strings straddling the 64/128-char
// word boundaries of the bit-parallel kernel, long runs, and raw UTF-8
// multi-byte sequences (the kernels are byte-oriented; these must not
// confuse the per-byte tables).
std::vector<std::string> HostileStrings() {
  std::vector<std::string> v;
  v.push_back("");
  v.push_back(std::string(1, '\0'));
  v.push_back(std::string("a\0b", 3));
  v.push_back(std::string("\0\0\0\0", 4));
  v.push_back(std::string(63, 'x'));
  v.push_back(std::string(64, 'x'));
  v.push_back(std::string(65, 'x'));
  v.push_back(std::string(127, 'y'));
  v.push_back(std::string(128, 'y'));
  v.push_back(std::string(129, 'y'));
  v.push_back(std::string(300, 'z'));
  v.push_back("caf\xC3\xA9");                 // café
  v.push_back("\xE6\x9D\xB1\xE4\xBA\xAC");    // 東京
  v.push_back("na\xC3\xAFve na\xC3\xAFve");
  std::string mixed;
  for (int i = 0; i < 70; ++i) mixed += (i % 3 == 0) ? "\xC3\xA9" : "e";
  v.push_back(mixed);
  return v;
}

// ---- Levenshtein: bit-parallel vs reference DP ------------------------------

TEST(KernelPropertyLevenshtein, MatchesReferenceOnRandomStrings) {
  Rng rng(17);
  for (int iter = 0; iter < 400; ++iter) {
    // Small alphabet maximizes match density (the interesting case for the
    // bit-parallel Eq tables); lengths sweep across both word boundaries.
    std::string a = RandomString(&rng, rng.UniformIndex(200), 4);
    std::string b = RandomString(&rng, rng.UniformIndex(200), 4);
    EXPECT_EQ(LevenshteinDistance(a, b), reference::LevenshteinDistance(a, b))
        << "len a=" << a.size() << " len b=" << b.size();
  }
}

TEST(KernelPropertyLevenshtein, MatchesReferenceOnRandomBytes) {
  Rng rng(23);
  for (int iter = 0; iter < 200; ++iter) {
    std::string a = RandomBytes(&rng, rng.UniformIndex(150));
    std::string b = RandomBytes(&rng, rng.UniformIndex(150));
    EXPECT_EQ(LevenshteinDistance(a, b), reference::LevenshteinDistance(a, b));
  }
}

TEST(KernelPropertyLevenshtein, MatchesReferenceAtWordBoundaries) {
  // Exhaustive sweep of every length pair around the single-word (64) and
  // two-word (128) boundaries, where the blocked kernel's carry logic and
  // top-block score bit are easiest to get wrong.
  Rng rng(31);
  const size_t lens[] = {0, 1, 2, 31, 62, 63, 64, 65, 66,
                         126, 127, 128, 129, 130, 192, 200};
  for (size_t la : lens) {
    for (size_t lb : lens) {
      std::string a = RandomString(&rng, la, 3);
      std::string b = RandomString(&rng, lb, 3);
      EXPECT_EQ(LevenshteinDistance(a, b),
                reference::LevenshteinDistance(a, b))
          << "la=" << la << " lb=" << lb;
    }
  }
}

TEST(KernelPropertyLevenshtein, MatchesReferenceOnHostileInputs) {
  auto hostile = HostileStrings();
  for (const std::string& a : hostile) {
    for (const std::string& b : hostile) {
      EXPECT_EQ(LevenshteinDistance(a, b),
                reference::LevenshteinDistance(a, b))
          << "a.size=" << a.size() << " b.size=" << b.size();
    }
  }
}

TEST(KernelPropertyLevenshtein, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
  // Straddling the word boundary with a known single edit.
  std::string long_a(100, 'q');
  std::string long_b = long_a;
  long_b[50] = 'r';
  EXPECT_EQ(LevenshteinDistance(long_a, long_b), 1);
}

// ---- string-kernel properties: symmetry, identity, range --------------------

using StringKernel = double (*)(std::string_view, std::string_view);

struct NamedKernel {
  const char* name;
  StringKernel fn;
};

const NamedKernel kStringKernels[] = {
    {"LevenshteinSimilarity", &LevenshteinSimilarity},
    {"JaroSimilarity", &JaroSimilarity},
    {"JaroWinklerSimilarity", &JaroWinklerSimilarity},
    {"ExactMatch", &ExactMatch},
    {"NeedlemanWunsch", &NeedlemanWunsch},
    {"SmithWaterman", &SmithWaterman},
    {"MongeElkan", &MongeElkan},
};

TEST(KernelPropertyStrings, SelfSimilarityIsOne) {
  Rng rng(41);
  std::vector<std::string> inputs = HostileStrings();
  for (int i = 0; i < 30; ++i) {
    inputs.push_back(RandomString(&rng, rng.UniformIndex(120), 6));
  }
  for (const auto& k : kStringKernels) {
    for (const std::string& s : inputs) {
      EXPECT_DOUBLE_EQ(k.fn(s, s), 1.0) << k.name << " len=" << s.size();
    }
  }
}

TEST(KernelPropertyStrings, SymmetricAndBounded) {
  Rng rng(43);
  std::vector<std::string> inputs = HostileStrings();
  for (int i = 0; i < 30; ++i) {
    inputs.push_back(RandomString(&rng, rng.UniformIndex(120), 4));
  }
  for (const auto& k : kStringKernels) {
    for (const std::string& a : inputs) {
      for (const std::string& b : inputs) {
        double ab = k.fn(a, b);
        double ba = k.fn(b, a);
        EXPECT_DOUBLE_EQ(ab, ba) << k.name;
        EXPECT_GE(ab, 0.0) << k.name;
        EXPECT_LE(ab, 1.0 + 1e-12) << k.name;
      }
    }
  }
}

// ---- token-set measures: ID merge vs string hash sets -----------------------

using TokenKernel = double (*)(const std::vector<std::string>&,
                               const std::vector<std::string>&);
using IdKernel = double (*)(const std::vector<uint32_t>&,
                            const std::vector<uint32_t>&);

struct NamedSetKernel {
  const char* name;
  TokenKernel strings;
  IdKernel ids;
};

const NamedSetKernel kSetKernels[] = {
    {"Jaccard", &JaccardSimilarity, &JaccardSimilarityIds},
    {"Cosine", &CosineSimilarity, &CosineSimilarityIds},
    {"Dice", &DiceSimilarity, &DiceSimilarityIds},
    {"Overlap", &OverlapCoefficient, &OverlapCoefficientIds},
};

std::vector<uint32_t> InternSortedUnique(const std::vector<std::string>& toks,
                                         TokenInterner* interner) {
  std::vector<uint32_t> ids;
  ids.reserve(toks.size());
  for (const std::string& t : toks) ids.push_back(interner->IdOf(t));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

TEST(KernelPropertyTokenSets, IdMergeMatchesStringSetsExactly) {
  Rng rng(53);
  TokenInterner interner;
  // Small token universe so overlaps are common; duplicates exercised
  // deliberately (the string measures de-dup via hash set, the ID path via
  // sort+unique — the resulting counts must match).
  const char* universe[] = {"new", "york", "city", "golden", "dragon",
                            "palace", "##a", "#ab", "ab#",
                            "caf\xC3\xA9", "", "12345"};
  const size_t kUniverse = sizeof(universe) / sizeof(universe[0]);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::string> a, b;
    size_t na = rng.UniformIndex(10);
    size_t nb = rng.UniformIndex(10);
    for (size_t i = 0; i < na; ++i) {
      a.push_back(universe[rng.UniformIndex(kUniverse)]);
    }
    for (size_t i = 0; i < nb; ++i) {
      b.push_back(universe[rng.UniformIndex(kUniverse)]);
    }
    std::vector<uint32_t> ida = InternSortedUnique(a, &interner);
    std::vector<uint32_t> idb = InternSortedUnique(b, &interner);
    for (const auto& k : kSetKernels) {
      double s = k.strings(a, b);
      double f = k.ids(ida, idb);
      // Bit-identical, including the empty-set conventions.
      EXPECT_TRUE(s == f || (std::isnan(s) && std::isnan(f)))
          << k.name << ": " << s << " vs " << f << " (|a|=" << na
          << " |b|=" << nb << ")";
    }
  }
}

TEST(KernelPropertyTokenSets, EmptySetConventionsMatch) {
  TokenInterner interner;
  std::vector<std::string> empty;
  std::vector<std::string> one = {"token"};
  std::vector<uint32_t> id_empty;
  std::vector<uint32_t> id_one = InternSortedUnique(one, &interner);
  for (const auto& k : kSetKernels) {
    EXPECT_DOUBLE_EQ(k.strings(empty, empty), k.ids(id_empty, id_empty))
        << k.name;
    EXPECT_DOUBLE_EQ(k.strings(empty, one), k.ids(id_empty, id_one))
        << k.name;
    EXPECT_DOUBLE_EQ(k.strings(one, empty), k.ids(id_one, id_empty))
        << k.name;
    EXPECT_DOUBLE_EQ(k.ids(id_one, id_one), 1.0) << k.name;
  }
}

TEST(KernelPropertyTokenSets, InternerGivesEqualIdsForEqualTokens) {
  TokenInterner interner;
  uint32_t a1 = interner.IdOf("alpha");
  uint32_t b = interner.IdOf("beta");
  uint32_t a2 = interner.IdOf(std::string("alpha"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(interner.size(), 2u);
  // NUL-containing and empty tokens are first-class.
  uint32_t nul = interner.IdOf(std::string_view("a\0b", 3));
  EXPECT_NE(nul, interner.IdOf("a"));
  EXPECT_EQ(nul, interner.IdOf(std::string_view("a\0b", 3)));
}

// ---- arena tokenizers vs allocating tokenizers ------------------------------

TEST(KernelPropertyTokenizers, ArenaQGramsMatchAllocating) {
  Rng rng(61);
  QGramScratch scratch;
  std::vector<std::string> inputs = HostileStrings();
  for (int i = 0; i < 40; ++i) {
    inputs.push_back(RandomBytes(&rng, rng.UniformIndex(80)));
  }
  for (const std::string& s : inputs) {
    auto expected = QGramTokenize(s, 3);
    const auto& views = QGramTokenizeInto(s, 3, &scratch);
    ASSERT_EQ(views.size(), expected.size()) << "len=" << s.size();
    for (size_t i = 0; i < views.size(); ++i) {
      EXPECT_EQ(std::string(views[i]), expected[i]);
    }
  }
}

TEST(KernelPropertyTokenizers, ArenaWhitespaceMatchesAllocating) {
  std::vector<std::string> inputs = {
      "", " ", "  \t \n ", "one", " one ", "new  york\tcity\n",
      std::string("a\0b c", 5), "  leading and trailing  "};
  std::vector<std::string_view> views;
  for (const std::string& s : inputs) {
    auto expected = WhitespaceTokenize(s);
    WhitespaceTokenizeInto(s, &views);
    ASSERT_EQ(views.size(), expected.size()) << "'" << s << "'";
    for (size_t i = 0; i < views.size(); ++i) {
      EXPECT_EQ(std::string(views[i]), expected[i]);
    }
  }
}

// ---- flattened forest vs per-tree scalar walks ------------------------------

Matrix RandomMatrix(Rng* rng, size_t rows, size_t cols, double nan_frac) {
  Matrix X(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (nan_frac > 0.0 &&
          rng->UniformIndex(1000) < static_cast<size_t>(nan_frac * 1000)) {
        X.At(r, c) = std::numeric_limits<double>::quiet_NaN();
      } else {
        X.At(r, c) =
            static_cast<double>(rng->UniformIndex(2000)) / 100.0 - 10.0;
      }
    }
  }
  return X;
}

TEST(FlatForestDifferential, ClassifierTreesMatchScalarWalkBitForBit) {
  Rng rng(71);
  const size_t kRows = 200, kCols = 6;
  Matrix X = RandomMatrix(&rng, kRows, kCols, 0.1);
  std::vector<int> y(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    y[r] = (X.At(r, 0) + X.At(r, 1) > 0.0) ? 1 : 0;
  }

  std::vector<DecisionTreeClassifier> trees;
  FlatForest flat;
  for (int t = 0; t < 5; ++t) {
    TreeOptions opt;
    opt.seed = 100 + t;
    opt.max_features = 0.8;
    trees.emplace_back(opt);
    ASSERT_TRUE(trees.back().Fit(X, y).ok());
    flat.AppendTree(trees.back().nodes(),
                    [](const DecisionTreeClassifier::Node& n) {
                      return n.prob_positive;
                    });
  }
  ASSERT_EQ(flat.num_trees(), trees.size());

  // Eval rows include NaNs (kernel must keep the NaN-goes-left routing) and
  // sweep odd block sizes so the lockstep loop's tail lanes are covered.
  Matrix eval = RandomMatrix(&rng, 97, kCols, 0.15);
  std::vector<double> sums(eval.rows(), 0.0);
  flat.AccumulateRows(eval, 0, eval.rows(), sums.data());
  for (size_t r = 0; r < eval.rows(); ++r) {
    double expected = 0.0;
    for (const auto& tree : trees) {
      expected += tree.PredictRowProba(eval.RowPtr(r));
    }
    EXPECT_EQ(sums[r], expected) << "row " << r;  // bit-identical
  }

  // Sub-range accumulation (the chunked ParallelFor shape) must agree too.
  std::vector<double> chunk(7, 0.0);
  flat.AccumulateRows(eval, 13, 20, chunk.data());
  for (size_t r = 13; r < 20; ++r) {
    EXPECT_EQ(chunk[r - 13], sums[r]);
  }
}

TEST(FlatForestDifferential, RegressionTreesMatchScalarWalkBitForBit) {
  Rng rng(73);
  const size_t kRows = 150, kCols = 4;
  Matrix X = RandomMatrix(&rng, kRows, kCols, 0.0);
  std::vector<double> y(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    y[r] = X.At(r, 0) * 0.5 - X.At(r, 2);
  }

  std::vector<RegressionTree> trees;
  FlatForest flat;
  for (int t = 0; t < 4; ++t) {
    TreeOptions opt;
    opt.seed = 200 + t;
    opt.min_samples_leaf = 2;
    trees.emplace_back(opt);
    ASSERT_TRUE(trees.back().Fit(X, y).ok());
    flat.AppendTree(trees.back().nodes(),
                    [](const RegressionTree::Node& n) { return n.value; });
  }

  Matrix eval = RandomMatrix(&rng, 60, kCols, 0.1);
  std::vector<double> per_tree(trees.size(), 0.0);
  for (size_t r = 0; r < eval.rows(); ++r) {
    flat.PredictRowPerTree(eval.RowPtr(r), per_tree.data());
    for (size_t t = 0; t < trees.size(); ++t) {
      EXPECT_EQ(per_tree[t], trees[t].PredictRow(eval.RowPtr(r)))
          << "row " << r << " tree " << t;
    }
  }
}

TEST(FlatForestDifferential, SingleLeafTreeWorks) {
  // A tree that never splits (all labels equal) flattens to one node.
  Matrix X(10, 2, 1.0);
  std::vector<int> y(10, 1);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(X, y).ok());
  FlatForest flat;
  flat.AppendTree(tree.nodes(), [](const DecisionTreeClassifier::Node& n) {
    return n.prob_positive;
  });
  std::vector<double> sums(X.rows(), 0.0);
  flat.AccumulateRows(X, 0, X.rows(), sums.data());
  for (size_t r = 0; r < X.rows(); ++r) {
    EXPECT_EQ(sums[r], tree.PredictRowProba(X.RowPtr(r)));
  }
}

TEST(FlatForestDifferential, ForestPredictionsThreadCountInvariant) {
  Rng rng(79);
  const size_t kRows = 120, kCols = 5;
  Matrix X = RandomMatrix(&rng, kRows, kCols, 0.05);
  std::vector<int> y(kRows);
  for (size_t r = 0; r < kRows; ++r) y[r] = (X.At(r, 1) > 0.0) ? 1 : 0;

  auto fit_predict = [&](int threads) {
    RandomForestOptions opt;
    opt.n_estimators = 15;
    opt.seed = 99;
    opt.parallelism = Parallelism::Threads(threads);
    RandomForestClassifier rf(opt);
    EXPECT_TRUE(rf.Fit(X, y).ok());
    return rf.PredictProba(X);
  };
  auto p1 = fit_predict(1);
  auto p2 = fit_predict(2);
  auto p8 = fit_predict(8);
  for (size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(p1[r], p2[r]) << "row " << r;
    EXPECT_EQ(p1[r], p8[r]) << "row " << r;
  }
}

}  // namespace
}  // namespace autoem
