#include <gtest/gtest.h>

#include <cmath>

#include "active/active_learner.h"
#include "active/oracle.h"
#include "common/rng.h"
#include "ml/metrics.h"

namespace autoem {
namespace {

// An EM-like pool: imbalanced, learnable from a handful of features.
Dataset MakePool(size_t n, uint64_t seed, double noise = 1.0) {
  Rng rng(seed);
  Dataset d;
  const size_t dims = 6;
  d.X = Matrix(n, dims);
  d.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int label = rng.Bernoulli(0.2) ? 1 : 0;
    d.y[i] = label;
    for (size_t c = 0; c < dims; ++c) {
      double center = (c < 3 && label == 1) ? 1.5 : 0.0;
      d.X.At(i, c) = rng.Normal(center, noise);
    }
  }
  for (size_t c = 0; c < dims; ++c) {
    d.feature_names.push_back("f" + std::to_string(c));
  }
  return d;
}

ActiveLearningOptions FastOptions() {
  ActiveLearningOptions options;
  options.init_size = 60;
  options.ac_batch = 10;
  options.st_batch = 40;
  options.label_budget = 120;
  options.max_iterations = 5;
  options.model.n_estimators = 15;
  options.run_automl_at_end = false;
  options.seed = 7;
  return options;
}

// ---- oracles ---------------------------------------------------------------------

TEST(OracleTest, GroundTruthReturnsLabelsAndCounts) {
  GroundTruthOracle oracle({1, 0, 1});
  EXPECT_EQ(oracle.Label(0), 1);
  EXPECT_EQ(oracle.Label(1), 0);
  EXPECT_EQ(oracle.num_queries(), 2u);
}

TEST(OracleTest, NoisyOracleFlipsApproximatelyAtRate) {
  std::vector<int> labels(2000, 1);
  NoisyOracle oracle(labels, 0.25, 42);
  size_t flips = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (oracle.Label(i) == 0) ++flips;
  }
  double rate = static_cast<double>(flips) / labels.size();
  EXPECT_NEAR(rate, 0.25, 0.04);
}

TEST(OracleTest, ZeroNoiseIsExact) {
  std::vector<int> labels = {1, 0, 1, 0};
  NoisyOracle oracle(labels, 0.0, 1);
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(oracle.Label(i), labels[i]);
  }
}

// ---- the active loop -----------------------------------------------------------------

TEST(ActiveLearnerTest, RespectsLabelBudget) {
  Dataset pool = MakePool(600, 1);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();
  auto result = RunAutoMlEmActive(pool, &oracle, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->human_labels_used, options.label_budget);
  EXPECT_EQ(result->human_labels_used, oracle.num_queries());
}

TEST(ActiveLearnerTest, SelfTrainingAddsMachineLabels) {
  Dataset pool = MakePool(600, 2);
  GroundTruthOracle oracle(pool.y);
  auto result = RunAutoMlEmActive(pool, &oracle, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->machine_labels_added, 0u);
  EXPECT_EQ(result->collected.size(),
            result->human_labels_used + result->machine_labels_added);
  size_t machine_count = 0;
  for (bool m : result->is_machine_label) machine_count += m;
  EXPECT_EQ(machine_count, result->machine_labels_added);
}

TEST(ActiveLearnerTest, ZeroStBatchIsPlainActiveLearning) {
  // Paper remark (1): st_batch = 0 reduces to AC + AutoML-EM.
  Dataset pool = MakePool(400, 3);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();
  options.st_batch = 0;
  auto result = RunAutoMlEmActive(pool, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->machine_labels_added, 0u);
  for (bool m : result->is_machine_label) EXPECT_FALSE(m);
}

TEST(ActiveLearnerTest, MachineLabelsAreMostlyCorrectWithGoodInit) {
  // Paper §V-D: with a reasonable initial model, self-training labels the
  // high-confidence region accurately.
  Dataset pool = MakePool(900, 4, /*noise=*/0.7);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();
  options.init_size = 150;
  options.label_budget = 250;
  auto result =
      RunAutoMlEmActive(pool, &oracle, options, nullptr, &pool.y);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->machine_labels_added, 0u);
  EXPECT_GT(result->machine_label_accuracy, 0.9);
}

TEST(ActiveLearnerTest, ClassRatioPreservedInSelfTraining) {
  // Paper remark (2): the collected machine labels keep roughly the initial
  // positive ratio alpha.
  Dataset pool = MakePool(900, 5, /*noise=*/0.7);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();
  options.init_size = 150;
  options.label_budget = 250;
  options.st_batch = 60;
  auto result = RunAutoMlEmActive(pool, &oracle, options);
  ASSERT_TRUE(result.ok());
  size_t machine_pos = 0, machine_total = 0;
  for (size_t i = 0; i < result->collected.size(); ++i) {
    if (result->is_machine_label[i]) {
      ++machine_total;
      machine_pos += (result->collected.y[i] == 1);
    }
  }
  ASSERT_GT(machine_total, 0u);
  double machine_ratio =
      static_cast<double>(machine_pos) / static_cast<double>(machine_total);
  EXPECT_NEAR(machine_ratio, 0.2, 0.12);  // pool alpha ~ 0.2
}

TEST(ActiveLearnerTest, NaiveModeSkewsTowardConfidentMajority) {
  // Without ratio preservation the self-training batch is free to be
  // dominated by the majority class.
  Dataset pool = MakePool(900, 6, /*noise=*/0.7);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();
  options.init_size = 150;
  options.label_budget = 250;
  options.preserve_class_ratio = false;
  auto result = RunAutoMlEmActive(pool, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->machine_labels_added, 0u);
}

TEST(ActiveLearnerTest, IterationStatsAreMonotone) {
  Dataset pool = MakePool(500, 7);
  Dataset test = MakePool(200, 8);
  GroundTruthOracle oracle(pool.y);
  auto result = RunAutoMlEmActive(pool, &oracle, FastOptions(), &test);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->iterations.size(), 2u);
  for (size_t i = 1; i < result->iterations.size(); ++i) {
    EXPECT_GE(result->iterations[i].human_labels,
              result->iterations[i - 1].human_labels);
    EXPECT_GE(result->iterations[i].machine_labels,
              result->iterations[i - 1].machine_labels);
    EXPECT_GE(result->iterations[i].iteration_model_test_f1, 0.0);
  }
}

TEST(ActiveLearnerTest, FinalAutoMlRunsWhenRequested) {
  Dataset pool = MakePool(500, 9);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();
  options.run_automl_at_end = true;
  options.automl.max_evaluations = 4;
  auto result = RunAutoMlEmActive(pool, &oracle, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->automl.has_value());
  Dataset test = MakePool(200, 10);
  double f1 = F1Score(test.y, result->automl->model.Predict(test.X));
  EXPECT_GT(f1, 0.3);
}

TEST(ActiveLearnerTest, InvalidInputsRejected) {
  Dataset pool = MakePool(50, 11);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();
  EXPECT_FALSE(RunAutoMlEmActive(Dataset{}, &oracle, options).ok());
  EXPECT_FALSE(RunAutoMlEmActive(pool, nullptr, options).ok());
  options.init_size = 0;
  EXPECT_FALSE(RunAutoMlEmActive(pool, &oracle, options).ok());
}

// Regression: n_init == 0 must surface as InvalidArgument, never reach the
// α = positives / n_init division (which would silently produce NaN and
// poison every downstream class-ratio decision).
TEST(ActiveLearnerTest, ZeroInitialSampleIsInvalidArgumentNotNaN) {
  Dataset pool = MakePool(50, 11);
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();

  options.init_size = 0;
  auto zero_init = RunAutoMlEmActive(pool, &oracle, options);
  ASSERT_FALSE(zero_init.ok());
  EXPECT_EQ(zero_init.status().code(), StatusCode::kInvalidArgument);

  options = FastOptions();
  auto empty_pool = RunAutoMlEmActive(Dataset{}, &oracle, options);
  ASSERT_FALSE(empty_pool.ok());
  EXPECT_EQ(empty_pool.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(oracle.num_queries(), 0u);  // rejected before any labeling
}

TEST(ActiveLearnerTest, PoolExhaustionStopsGracefully) {
  Dataset pool = MakePool(80, 12);  // tiny pool, generous budget
  GroundTruthOracle oracle(pool.y);
  ActiveLearningOptions options = FastOptions();
  options.init_size = 30;
  options.label_budget = 10000;
  options.max_iterations = 50;
  auto result = RunAutoMlEmActive(pool, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->collected.size(), pool.size());
}

TEST(ActiveLearnerTest, SelfTrainingImprovesOverPlainActiveLearning) {
  // The paper's core §V-D claim, reproduced in miniature: with the same
  // human budget, AutoML-EM-Active >= AC on a learnable pool.
  Dataset pool = MakePool(1200, 13, /*noise=*/1.1);
  Dataset test = MakePool(400, 14, /*noise=*/1.1);

  ActiveLearningOptions with_st = FastOptions();
  with_st.init_size = 120;
  with_st.st_batch = 80;
  with_st.max_iterations = 6;
  ActiveLearningOptions without_st = with_st;
  without_st.st_batch = 0;

  double f1_with = 0.0, f1_without = 0.0;
  int wins = 0;
  for (uint64_t seed : {21, 22, 23}) {
    with_st.seed = seed;
    without_st.seed = seed;
    GroundTruthOracle o1(pool.y);
    GroundTruthOracle o2(pool.y);
    auto r1 = RunAutoMlEmActive(pool, &o1, with_st, &test);
    auto r2 = RunAutoMlEmActive(pool, &o2, without_st, &test);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    f1_with = r1->iterations.back().iteration_model_test_f1;
    f1_without = r2->iterations.back().iteration_model_test_f1;
    if (f1_with >= f1_without - 0.02) ++wins;
  }
  // Self-training should not lose across the majority of seeds.
  EXPECT_GE(wins, 2);
}

}  // namespace
}  // namespace autoem
