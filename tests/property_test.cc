// Randomized property tests over the core substrate: metric axioms for the
// string measures, invariances of the tree models, and shape invariants of
// every preprocessing transform under the pipeline contract.
#include <gtest/gtest.h>

#include <cmath>

#include "automl/pipeline.h"
#include "automl/search_space.h"
#include "common/rng.h"
#include "ml/models/decision_tree.h"
#include "ml/models/random_forest.h"
#include "preprocess/feature_agglomeration.h"
#include "preprocess/feature_selection.h"
#include "preprocess/imputer.h"
#include "preprocess/pca.h"
#include "preprocess/scalers.h"
#include "table/csv.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace autoem {
namespace {

std::string RandomString(Rng* rng, size_t max_len) {
  size_t len = rng->UniformIndex(max_len + 1);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    // Small alphabet raises collision probability, stressing edge cases.
    out += static_cast<char>('a' + rng->UniformIndex(4));
  }
  return out;
}

// ---- metric axioms -------------------------------------------------------------

TEST(MetricPropertyTest, LevenshteinIsAMetric) {
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a = RandomString(&rng, 10);
    std::string b = RandomString(&rng, 10);
    std::string c = RandomString(&rng, 10);
    int ab = LevenshteinDistance(a, b);
    int ba = LevenshteinDistance(b, a);
    int ac = LevenshteinDistance(a, c);
    int cb = LevenshteinDistance(c, b);
    EXPECT_EQ(ab, ba);                       // symmetry
    EXPECT_EQ(LevenshteinDistance(a, a), 0); // identity
    EXPECT_LE(ab, ac + cb);                  // triangle inequality
    // Bounded by the longer string's length.
    EXPECT_LE(static_cast<size_t>(ab), std::max(a.size(), b.size()));
  }
}

TEST(MetricPropertyTest, JaccardDistanceTriangleInequality) {
  // 1 - Jaccard is a metric on sets.
  Rng rng(2);
  auto random_tokens = [&](size_t n) {
    std::vector<std::string> out;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::string(1, static_cast<char>('a' + rng.UniformIndex(6))));
    }
    return out;
  };
  for (int trial = 0; trial < 300; ++trial) {
    auto a = random_tokens(1 + rng.UniformIndex(5));
    auto b = random_tokens(1 + rng.UniformIndex(5));
    auto c = random_tokens(1 + rng.UniformIndex(5));
    double dab = 1.0 - JaccardSimilarity(a, b);
    double dac = 1.0 - JaccardSimilarity(a, c);
    double dcb = 1.0 - JaccardSimilarity(c, b);
    EXPECT_LE(dab, dac + dcb + 1e-12);
  }
}

TEST(MetricPropertyTest, JaroWinklerDominatesJaro) {
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a = RandomString(&rng, 12);
    std::string b = RandomString(&rng, 12);
    EXPECT_GE(JaroWinklerSimilarity(a, b) + 1e-12, JaroSimilarity(a, b));
  }
}

TEST(MetricPropertyTest, SetMeasureOrdering) {
  // overlap >= dice and cosine >= jaccard on every input (standard
  // inequalities between the normalizations).
  Rng rng(4);
  auto random_tokens = [&](size_t n) {
    std::vector<std::string> out;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::string(1, static_cast<char>('a' + rng.UniformIndex(8))));
    }
    return out;
  };
  for (int trial = 0; trial < 300; ++trial) {
    auto a = random_tokens(1 + rng.UniformIndex(6));
    auto b = random_tokens(1 + rng.UniformIndex(6));
    double jaccard = JaccardSimilarity(a, b);
    double dice = DiceSimilarity(a, b);
    double cosine = CosineSimilarity(a, b);
    double overlap = OverlapCoefficient(a, b);
    EXPECT_GE(overlap + 1e-12, cosine);
    EXPECT_GE(cosine + 1e-12, dice);
    EXPECT_GE(dice + 1e-12, jaccard);
  }
}

// ---- tree invariances -------------------------------------------------------------

TEST(TreePropertyTest, InvariantToMonotoneFeatureTransforms) {
  // CART splits depend only on feature order, so exp-transforming a column
  // must not change any prediction (threshold values differ, leaves match).
  Rng rng(5);
  Matrix X(200, 3);
  std::vector<int> y(200);
  for (size_t i = 0; i < 200; ++i) {
    y[i] = rng.Bernoulli(0.4) ? 1 : 0;
    for (size_t c = 0; c < 3; ++c) {
      X.At(i, c) = (y[i] == 1 ? 0.8 : 0.0) + rng.Normal(0, 1.0);
    }
  }
  Matrix X_mono = X;
  for (size_t i = 0; i < 200; ++i) {
    X_mono.At(i, 0) = std::exp(X.At(i, 0));          // strictly increasing
    X_mono.At(i, 1) = 3.0 * X.At(i, 1) - 7.0;         // affine increasing
  }
  TreeOptions opt;
  opt.seed = 99;
  DecisionTreeClassifier t1(opt);
  DecisionTreeClassifier t2(opt);
  ASSERT_TRUE(t1.Fit(X, y).ok());
  ASSERT_TRUE(t2.Fit(X_mono, y).ok());
  std::vector<double> p1 = t1.PredictProba(X);
  std::vector<double> p2 = t2.PredictProba(X_mono);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p1[i], p2[i], 1e-12);
  }
}

TEST(TreePropertyTest, ForestProbabilityIsMeanOfTreeLeaves) {
  Rng rng(6);
  Matrix X(100, 2);
  std::vector<int> y(100);
  for (size_t i = 0; i < 100; ++i) {
    y[i] = rng.Bernoulli(0.5) ? 1 : 0;
    X.At(i, 0) = y[i] + rng.Normal(0, 1.0);
    X.At(i, 1) = rng.Normal(0, 1.0);
  }
  RandomForestOptions opt;
  opt.n_estimators = 9;
  RandomForestClassifier rf(opt);
  ASSERT_TRUE(rf.Fit(X, y).ok());
  // Probabilities are averages of 9 leaf probabilities, each in [0,1].
  for (double p : rf.PredictProba(X)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(TreePropertyTest, DuplicatedRowsActLikeDoubledWeights) {
  Matrix X(4, 1);
  X.At(0, 0) = 1.0;
  X.At(1, 0) = 2.0;
  X.At(2, 0) = 3.0;
  X.At(3, 0) = 4.0;
  std::vector<int> y = {0, 0, 1, 1};

  // Duplicate row 3 twice vs weight 3 on it.
  Matrix X_dup(6, 1);
  std::vector<int> y_dup;
  for (size_t i = 0; i < 4; ++i) {
    X_dup.At(i, 0) = X.At(i, 0);
    y_dup.push_back(y[i]);
  }
  X_dup.At(4, 0) = X.At(3, 0);
  X_dup.At(5, 0) = X.At(3, 0);
  y_dup.push_back(y[3]);
  y_dup.push_back(y[3]);

  std::vector<double> w = {1, 1, 1, 3};
  TreeOptions opt;
  opt.seed = 7;
  DecisionTreeClassifier weighted(opt);
  DecisionTreeClassifier duplicated(opt);
  ASSERT_TRUE(weighted.Fit(X, y, &w).ok());
  ASSERT_TRUE(duplicated.Fit(X_dup, y_dup).ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(weighted.PredictProba(X)[i],
                duplicated.PredictProba(X)[i], 1e-12);
  }
}

// ---- transform shape contracts -------------------------------------------------------

class TransformShapeTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  static std::unique_ptr<Transform> Make(const std::string& name) {
    if (name == "imputer") return std::make_unique<SimpleImputer>("mean");
    if (name == "standard") return std::make_unique<StandardScaler>();
    if (name == "minmax") return std::make_unique<MinMaxScaler>();
    if (name == "robust") return std::make_unique<RobustScaler>(25.0, 75.0);
    if (name == "select_percentile") {
      return std::make_unique<SelectPercentile>(60.0);
    }
    if (name == "select_rates") return std::make_unique<SelectRates>(0.2);
    if (name == "variance") return std::make_unique<VarianceThreshold>(1e-9);
    if (name == "pca") return std::make_unique<Pca>(0.9);
    if (name == "agglomeration") {
      return std::make_unique<FeatureAgglomeration>(4);
    }
    return nullptr;
  }
};

TEST_P(TransformShapeTest, TrainAndTestWidthsAgree) {
  Rng rng(8);
  const size_t d = 10;
  Matrix train(120, d);
  Matrix test(40, d);
  std::vector<int> y(120);
  for (size_t i = 0; i < 120; ++i) {
    y[i] = i % 2;
    for (size_t c = 0; c < d; ++c) {
      train.At(i, c) = y[i] * (c < 3 ? 1.0 : 0.0) + rng.Normal(0, 1);
    }
  }
  for (size_t i = 0; i < 40; ++i) {
    for (size_t c = 0; c < d; ++c) test.At(i, c) = rng.Normal(0, 1);
  }

  auto transform = Make(GetParam());
  ASSERT_NE(transform, nullptr);
  ASSERT_TRUE(transform->Fit(train, y).ok()) << GetParam();
  Matrix out_train = transform->Apply(train);
  Matrix out_test = transform->Apply(test);
  EXPECT_EQ(out_train.rows(), train.rows());
  EXPECT_EQ(out_test.rows(), test.rows());
  EXPECT_EQ(out_train.cols(), out_test.cols()) << GetParam();
  EXPECT_GE(out_train.cols(), 1u) << GetParam();

  std::vector<std::string> names(d);
  for (size_t c = 0; c < d; ++c) names[c] = "f" + std::to_string(c);
  EXPECT_EQ(transform->OutputNames(names).size(), out_train.cols())
      << GetParam();
}

TEST_P(TransformShapeTest, ApplyIsDeterministic) {
  Rng rng(9);
  Matrix X(60, 6);
  std::vector<int> y(60);
  for (size_t i = 0; i < 60; ++i) {
    y[i] = i % 2;
    for (size_t c = 0; c < 6; ++c) X.At(i, c) = rng.Normal(y[i], 1.0);
  }
  auto transform = Make(GetParam());
  ASSERT_TRUE(transform->Fit(X, y).ok());
  Matrix a = transform->Apply(X);
  Matrix b = transform->Apply(X);
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(a.At(r, c), b.At(r, c)) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransforms, TransformShapeTest,
                         ::testing::Values("imputer", "standard", "minmax",
                                           "robust", "select_percentile",
                                           "select_rates", "variance", "pca",
                                           "agglomeration"));

// ---- pipeline contract over the whole space --------------------------------------------

TEST(PipelinePropertyTest, PredictionsMatchRowwiseEvaluation) {
  // Batch PredictProba must agree with predicting each row separately.
  Rng rng(10);
  Dataset d;
  d.X = Matrix(80, 5);
  d.y.resize(80);
  for (size_t i = 0; i < 80; ++i) {
    d.y[i] = rng.Bernoulli(0.3) ? 1 : 0;
    for (size_t c = 0; c < 5; ++c) {
      d.X.At(i, c) = d.y[i] + rng.Normal(0, 1.0);
    }
  }
  ConfigurationSpace space = BuildEmSearchSpace(ModelSpace::kAllModels);
  for (int trial = 0; trial < 8; ++trial) {
    Configuration config = space.Sample(&rng);
    auto pipeline = EmPipeline::Compile(config);
    ASSERT_TRUE(pipeline.ok());
    if (!pipeline->Fit(d).ok()) continue;
    std::vector<double> batch = pipeline->PredictProba(d.X);
    for (size_t i = 0; i < 10; ++i) {
      Matrix one(1, 5);
      for (size_t c = 0; c < 5; ++c) one.At(0, c) = d.X.At(i, c);
      EXPECT_NEAR(pipeline->PredictProba(one)[0], batch[i], 1e-9)
          << GetString(config, "classifier:__choice__", "?");
    }
  }
}

// ---- CSV hostile inputs --------------------------------------------------------
//
// The CSV reader is the trust boundary for user data: any byte string must
// produce either a Table or a clean Status — never UB, never a crash. These
// are the unit-test twins of fuzz/csv_fuzzer.cc.

TEST(CsvHostileTest, EmbeddedNulBytesSurviveRoundTrip) {
  // NUL is a legal cell byte, not a terminator. "1\0junk" must stay a
  // string cell (not truncate to the number 1 — the Value::Parse c_str()
  // regression), and the writer must carry the bytes through.
  std::string text("a,b\nx\0y,2\n1\0junk,3\n", 19);
  auto table = ParseCsv(text, "t");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->cell(0, 0).AsString(), std::string("x\0y", 3));
  EXPECT_EQ(table->cell(1, 0).AsString(), std::string("1\0junk", 6));
  auto again = ParseCsv(ToCsvString(*table), "t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->cell(1, 0).AsString(), std::string("1\0junk", 6));
}

TEST(CsvHostileTest, LoneCarriageReturnsAreCellBytes) {
  // Bare \r (not followed by \n) must not be mistaken for a row break.
  auto table = ParseCsv("a,b\n1\r2,3\n", "t");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->schema().num_attributes(), 2u);
}

TEST(CsvHostileTest, UnterminatedQuoteIsACleanError) {
  for (const char* text : {"a,b\n\"unterminated,2\n", "a\n\"", "\""}) {
    auto table = ParseCsv(text, "t");
    EXPECT_FALSE(table.ok()) << "accepted: " << text;
    if (!table.ok()) {
      EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // Lenient cases the dialect deliberately accepts: text after a closing
  // quote concatenates ("x"tail -> xtail), matching the splitter's
  // cell-continuation rule. Pin that so a future "fix" is a conscious one.
  auto table = ParseCsv("a,b\n1,\"x\"tail\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->cell(0, 1).AsString(), "xtail");
}

TEST(CsvHostileTest, HugeSingleRowAndManyColumns) {
  // A single 1 MiB cell and a 10k-column header: should parse, not blow up.
  std::string big_cell(1 << 20, 'x');
  auto one = ParseCsv("a\n" + big_cell + "\n", "t");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->cell(0, 0).AsString().size(), big_cell.size());

  std::string header = "c0";
  for (int i = 1; i < 10000; ++i) header += ",c" + std::to_string(i);
  auto wide = ParseCsv(header + "\n", "t");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->schema().num_attributes(), 10000u);
}

TEST(CsvHostileTest, ByteSoupNeverCrashes) {
  // Random byte strings over the full 0..255 range: any Status is fine,
  // UB is not. Mirrors the fuzzer's mutation loop in miniature, and pins
  // the invariant under the plain (non-sanitized) build too.
  Rng rng(11);
  const char alphabet[] = {',', '"', '\n', '\r', '\0', 'a', '1', '.', '-'};
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text;
    size_t len = rng.UniformIndex(64);
    for (size_t i = 0; i < len; ++i) {
      if (rng.Bernoulli(0.7)) {
        text += alphabet[rng.UniformIndex(sizeof(alphabet))];
      } else {
        text += static_cast<char>(rng.UniformIndex(256));
      }
    }
    auto table = ParseCsv(text, "t");
    if (table.ok()) {
      // Whatever parsed must survive its own canonical form.
      auto again = ParseCsv(ToCsvString(*table), "t");
      EXPECT_TRUE(again.ok()) << "canonical form of a parsed table failed";
    }
  }
}

}  // namespace
}  // namespace autoem
