// Reproduces paper Figure 14 ("Comparing the test F1 Score between AutoML-EM
// and AC + AutoML-EM under different initial training data size",
// ac_batch = 20, st_batch = 200): init in {30, 100, 500}.
//
// Shape to check: self-training helps when the initial model is decent
// (init >= 100) and can *hurt* at init = 30 because the low-quality model
// infers wrong labels (the paper's takeaway for §V-D).
#include <cstdio>

#include "bench/bench_active_common.h"

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.5, /*evals=*/12);

  PrintHeader(
      "Figure 14: initial training size sweep (ac_batch=20, st_batch=200; "
      "test F1, %)");

  const size_t kInitSizes[] = {30, 100, 500};
  const size_t ac_batch = ScaledKnob(20, args.scale);
  const int iterations = 20;  // paper: both approaches run 20 iterations

  std::printf("%-16s %-18s", "Dataset", "Method");
  for (size_t i : kInitSizes) std::printf(" init=%-4zu", i);
  std::printf("  (paper-size)\n");

  for (const char* name : {"Amazon-Google", "Abt-Buy"}) {
    if (!args.WantsDataset(name)) continue;
    auto profile = FindProfile(name);
    BenchmarkData data = MustGenerate(*profile, args.seed, args.scale);
    AutoMlEmFeatureGenerator generator;
    FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());

    for (bool self_training : {false, true}) {
      std::printf("%-16s %-18s", name,
                  self_training ? "AutoML-EM-Active" : "AC + AutoML-EM");
      BenchCase c = DatasetCase("fig14_init_size", name, args);
      c.params["method"] =
          self_training ? "automl_em_active" : "ac_automl_em";
      for (size_t paper_init : kInitSizes) {
        ActiveLearningOptions options = BaseActiveOptions(args);
        options.init_size = ScaledKnob(paper_init, args.scale, 10);
        options.ac_batch = ac_batch;
        options.st_batch =
            self_training ? ScaledKnob(200, args.scale, 10) : 0;
        options.max_iterations = iterations;
        options.label_budget =
            options.init_size + iterations * options.ac_batch;
        double f1 = RunActiveArm(fb, options);
        std::printf(" %8.1f", f1);
        std::fflush(stdout);
        c.counters["test_f1_init" + std::to_string(paper_init)] = f1;
      }
      std::printf("\n");
      ReportBenchCase(std::move(c));
    }
  }

  std::printf(
      "\npaper reference: Amazon-Google AC 47.6/48.1/48.3 vs Active "
      "32.3/53.5/54.8; Abt-Buy AC 48.2/43.2/45.2 vs Active 45.2/53.1/52.9\n"
      "(note the init=30 regression for the Active arm)\n");
  return 0;
}
