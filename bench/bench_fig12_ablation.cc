// Reproduces paper Figure 12 ("AutoML-EM validation F1 Score by excluding
// modules"): search the best pipeline on the two hardest datasets, then
// re-evaluate it with data preprocessing (balancing + rescaling) and feature
// preprocessing disabled.
//
// Shape to check: the full pipeline scores the highest; excluding data
// preprocessing drops F1; excluding both drops it further (paper:
// 63.7 -> 60.1 -> 59.3 on Amazon-Google; 63.9 -> 56.0 -> 55.7 on Abt-Buy).
#include <cstdio>

#include "automl/automl_em.h"
#include "bench/bench_util.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.3, /*evals=*/24);

  PrintHeader("Figure 12: pipeline module ablation (validation F1, %)");
  std::printf("%-16s %14s %14s %14s\n", "Dataset", "Excl DP+FP", "Excl DP",
              "AutoML-EM");

  for (const char* name : {"Amazon-Google", "Abt-Buy"}) {
    if (!args.WantsDataset(name)) continue;
    auto profile = FindProfile(name);
    BenchmarkData data = MustGenerate(*profile, args.seed, args.scale);
    AutoMlEmFeatureGenerator generator;
    FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());

    // Paper protocol: 3/5 train, 1/5 valid (1/5 test unused here); we split
    // the generated train block 3:1 into train/valid. A single searched
    // pipeline may happen to use no preprocessing at all (ablation then
    // measures nothing), so we average the ablation over three independent
    // searches.
    double sum_full = 0.0, sum_no_dp = 0.0, sum_no_both = 0.0;
    int completed = 0;
    for (uint64_t trial = 0; trial < 3; ++trial) {
      Rng rng(args.seed + trial);
      SplitResult split = TrainTestSplit(fb.train, 0.25, &rng);
      HoldoutEvaluator evaluator(split.train, split.test);

      AutoMlEmOptions options;
      options.max_evaluations = args.evals;
      options.seed = args.seed + trial * 1000003u;
      options.parallelism = args.parallelism();
      auto run = RunAutoMlEm(split.train, split.test, options);
      if (!run.ok()) {
        std::fprintf(stderr, "search failed: %s\n",
                     run.status().ToString().c_str());
        continue;
      }
      sum_full += evaluator.Evaluate(run->best_config).valid_f1;
      sum_no_dp +=
          evaluator
              .Evaluate(EmPipeline::DisableDataPreprocessing(run->best_config))
              .valid_f1;
      sum_no_both += evaluator
                         .Evaluate(EmPipeline::DisableDataPreprocessing(
                             EmPipeline::DisableFeaturePreprocessing(
                                 run->best_config)))
                         .valid_f1;
      ++completed;
    }
    if (completed == 0) return 1;
    std::printf("%-16s %14.1f %14.1f %14.1f\n", name,
                sum_no_both / completed * 100.0,
                sum_no_dp / completed * 100.0,
                sum_full / completed * 100.0);
    BenchCase c = DatasetCase("fig12_ablation", name, args);
    c.counters["excl_dp_fp_valid_f1"] = sum_no_both / completed * 100.0;
    c.counters["excl_dp_valid_f1"] = sum_no_dp / completed * 100.0;
    c.counters["full_valid_f1"] = sum_full / completed * 100.0;
    ReportBenchCase(std::move(c));
  }

  std::printf("\npaper reference: Amazon-Google 59.3 / 60.1 / 63.7;"
              " Abt-Buy 55.7 / 56.0 / 63.9\n");
  return 0;
}
