// Reproduces paper Figure 15 ("Comparing the test F1 Score ... under the
// self-training batch size", init = 500, ac_batch = 2, 20 iterations):
// st_batch in {0, 20, 50, 200}. st_batch = 0 is exactly AC + AutoML-EM.
//
// Shape to check: F1 rises with st_batch with diminishing returns (paper:
// 48.3 / 48.7 / 53.6 / 54.8 on Amazon-Google).
//
// Extra ablation (DESIGN.md): --naive-st disables the class-ratio
// preservation of Remark (2) in §IV, showing why the quota matters.
#include <cstdio>
#include <cstring>

#include "bench/bench_active_common.h"

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.5, /*evals=*/12);
  bool naive_st = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--naive-st") == 0) naive_st = true;
  }

  PrintHeader(
      "Figure 15: self-training batch size sweep (init=500, ac_batch=2, "
      "20 iterations; test F1, %)");
  if (naive_st) {
    std::printf("[ablation] class-ratio preservation DISABLED (--naive-st)\n");
  }

  const size_t kStBatches[] = {0, 20, 50, 200};
  std::printf("%-16s", "Dataset");
  for (size_t st : kStBatches) std::printf(" st=%-5zu", st);
  std::printf(" (st=0 == AC + AutoML-EM)\n");

  for (const char* name : {"Amazon-Google", "Abt-Buy"}) {
    if (!args.WantsDataset(name)) continue;
    auto profile = FindProfile(name);
    BenchmarkData data = MustGenerate(*profile, args.seed, args.scale);
    AutoMlEmFeatureGenerator generator;
    FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());

    std::printf("%-16s", name);
    BenchCase c = DatasetCase("fig15_st_batch", name, args);
    c.params["preserve_class_ratio"] = naive_st ? "false" : "true";
    for (size_t paper_st : kStBatches) {
      ActiveLearningOptions options = BaseActiveOptions(args);
      options.init_size = ScaledKnob(500, args.scale, 30);
      options.ac_batch = ScaledKnob(2, args.scale, 2);
      options.st_batch =
          paper_st == 0 ? 0 : ScaledKnob(paper_st, args.scale, 4);
      options.max_iterations = 20;
      options.label_budget =
          options.init_size + 20 * options.ac_batch;
      options.preserve_class_ratio = !naive_st;
      double f1 = RunActiveArm(fb, options);
      std::printf(" %7.1f", f1);
      std::fflush(stdout);
      c.counters["test_f1_st" + std::to_string(paper_st)] = f1;
    }
    std::printf("\n");
    ReportBenchCase(std::move(c));
  }

  std::printf(
      "\npaper reference: Amazon-Google 48.3/48.7/53.6/54.8; Abt-Buy "
      "45.2/45.2/46.8/52.9 (diminishing returns as st_batch grows)\n");
  return 0;
}
