// Micro-benchmarks (google-benchmark) for the similarity-function and
// feature-generation substrate: these dominate AutoML-EM's featurization
// cost, so regressions here slow every experiment.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "bench/bench_gbench_report.h"
#include "common/rng.h"
#include "datagen/benchmark_gen.h"
#include "features/feature_gen.h"
#include "text/interner.h"
#include "text/similarity.h"
#include "text/similarity_function.h"
#include "text/tokenizer.h"

namespace autoem {
namespace {

std::string MakeString(size_t words, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    size_t len = 3 + rng.UniformIndex(7);
    for (size_t c = 0; c < len; ++c) {
      out += static_cast<char>('a' + rng.UniformIndex(26));
    }
  }
  return out;
}

// Interns a string's 3-grams into a sorted duplicate-free ID vector — the
// same per-record representation TableTokenCache builds once and every
// pair-level merge consumes.
std::vector<uint32_t> InternQGrams(std::string_view s,
                                   TokenInterner* interner) {
  QGramScratch scratch;
  std::vector<uint32_t> ids;
  for (std::string_view g : QGramTokenizeInto(s, 3, &scratch)) {
    ids.push_back(interner->IdOf(g));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void BM_LevenshteinDistance(benchmark::State& state) {
  std::string a = MakeString(state.range(0), 1);
  std::string b = MakeString(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinDistance)->Arg(2)->Arg(8)->Arg(24);

// The scalar DP oracle on the same inputs: the in-binary denominator for the
// bit-parallel kernel's speedup claim (DESIGN.md §13).
void BM_LevenshteinReference(benchmark::State& state) {
  std::string a = MakeString(state.range(0), 1);
  std::string b = MakeString(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinReference)->Arg(2)->Arg(8)->Arg(24);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = MakeString(state.range(0), 3);
  std::string b = MakeString(state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler)->Arg(2)->Arg(8)->Arg(24);

void BM_MongeElkan(benchmark::State& state) {
  std::string a = MakeString(state.range(0), 5);
  std::string b = MakeString(state.range(0), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MongeElkan(a, b));
  }
}
BENCHMARK(BM_MongeElkan)->Arg(2)->Arg(8)->Arg(24);

// Per-pair cost of a 3-gram Jaccard feature as production pays it: the
// token cache interns each record's grams into a sorted ID vector *once*,
// so every pair evaluation is just the linear merge measured here.
// (Historically this case tokenized and hash-set-ed per call; that legacy
// path is kept below as BM_JaccardQGramPerCallStrings.)
void BM_JaccardQGram(benchmark::State& state) {
  TokenInterner interner;
  std::vector<uint32_t> a = InternQGrams(MakeString(state.range(0), 7),
                                         &interner);
  std::vector<uint32_t> b = InternQGrams(MakeString(state.range(0), 8),
                                         &interner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardSimilarityIds(a, b));
  }
}
BENCHMARK(BM_JaccardQGram)->Arg(2)->Arg(8)->Arg(24);

// The pre-interning implementation (allocate token strings, build two hash
// sets, probe): retained as the in-binary denominator for the merge kernel.
void BM_JaccardQGramPerCallStrings(benchmark::State& state) {
  std::string a = MakeString(state.range(0), 7);
  std::string b = MakeString(state.range(0), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JaccardSimilarity(QGramTokenize(a, 3), QGramTokenize(b, 3)));
  }
}
BENCHMARK(BM_JaccardQGramPerCallStrings)->Arg(2)->Arg(8)->Arg(24);

// All four token-set measures over one interned ID pair — the per-pair cost
// of the full token-measure block in the Table II feature set.
void BM_AllTokenMeasuresIdsOnePair(benchmark::State& state) {
  TokenInterner interner;
  std::vector<uint32_t> a = InternQGrams(MakeString(8, 7), &interner);
  std::vector<uint32_t> b = InternQGrams(MakeString(8, 8), &interner);
  for (auto _ : state) {
    double sum = JaccardSimilarityIds(a, b) + CosineSimilarityIds(a, b) +
                 DiceSimilarityIds(a, b) + OverlapCoefficientIds(a, b);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AllTokenMeasuresIdsOnePair);

// Once-per-record cache-build cost: arena q-gram tokenization plus
// interning into a sorted ID vector. This is the work the token cache
// amortizes across every pair that touches the record.
void BM_QGramInternCacheBuild(benchmark::State& state) {
  std::string s = MakeString(8, 11);
  TokenInterner interner;
  QGramScratch scratch;
  std::vector<uint32_t> ids;
  for (auto _ : state) {
    ids.clear();
    for (std::string_view g : QGramTokenizeInto(s, 3, &scratch)) {
      ids.push_back(interner.IdOf(g));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    benchmark::DoNotOptimize(ids.data());
  }
}
BENCHMARK(BM_QGramInternCacheBuild);

void BM_AllStringFunctionsOnePair(benchmark::State& state) {
  std::string a = MakeString(8, 9);
  std::string b = MakeString(8, 10);
  const auto& funcs = AllStringFunctions();
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& f : funcs) sum += f.Apply(a, b);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AllStringFunctionsOnePair);

void BM_FeaturizeRestaurantPairs(benchmark::State& state) {
  auto data = GenerateBenchmarkByName("Fodors-Zagats", 1, 0.2);
  if (!data.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  AutoMlEmFeatureGenerator generator;
  if (!generator.Plan(data->train.left, data->train.right).ok()) {
    state.SkipWithError("plan failed");
    return;
  }
  for (auto _ : state) {
    Dataset d = generator.Generate(data->train);
    benchmark::DoNotOptimize(d.X.rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data->train.pairs.size()));
}
BENCHMARK(BM_FeaturizeRestaurantPairs)->Unit(benchmark::kMillisecond);

void BM_GenerateBenchmark(benchmark::State& state) {
  auto profile = FindProfile("Amazon-Google");
  for (auto _ : state) {
    auto data = GenerateBenchmark(*profile, 42, 0.1);
    benchmark::DoNotOptimize(data.ok());
  }
  state.SetLabel("Amazon-Google @ scale 0.1");
}
BENCHMARK(BM_GenerateBenchmark)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace autoem

int main(int argc, char** argv) {
  return autoem::bench::RunGBenchMain(argc, argv);
}
