// Reproduces paper Figure 13 ("Comparing the test F1 Score between AutoML-EM
// and AC + AutoML-EM under different labeling budgets", init = 500,
// st_batch = 200): test F1 at 40/160/400 active-learning labels for plain
// active learning vs the hybrid with self-training.
//
// Shape to check: AutoML-EM-Active > AC + AutoML-EM at every budget on both
// hard datasets (paper: e.g. 56.5 vs 41.6 at 160 labels on Amazon-Google).
#include <cstdio>

#include "bench/bench_active_common.h"

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.5, /*evals=*/12);

  PrintHeader(
      "Figure 13: AC + AutoML-EM vs AutoML-EM-Active across labeling "
      "budgets (init=500, st_batch=200; test F1, %)");

  const size_t kAcLabelBudgets[] = {40, 160, 400};
  const size_t ac_batch = ScaledKnob(20, args.scale);

  std::printf("%-16s %-18s", "Dataset", "Method");
  for (size_t b : kAcLabelBudgets) std::printf(" %8zu", b);
  std::printf("   (# active-learning labels, paper-size)\n");

  for (const char* name : {"Amazon-Google", "Abt-Buy"}) {
    if (!args.WantsDataset(name)) continue;
    auto profile = FindProfile(name);
    BenchmarkData data = MustGenerate(*profile, args.seed, args.scale);
    AutoMlEmFeatureGenerator generator;
    FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());

    for (bool self_training : {false, true}) {
      std::printf("%-16s %-18s", name,
                  self_training ? "AutoML-EM-Active" : "AC + AutoML-EM");
      BenchCase c = DatasetCase("fig13_active_budget", name, args);
      c.params["method"] =
          self_training ? "automl_em_active" : "ac_automl_em";
      for (size_t paper_budget : kAcLabelBudgets) {
        ActiveLearningOptions options = BaseActiveOptions(args);
        options.init_size = ScaledKnob(500, args.scale, 30);
        options.ac_batch = ac_batch;
        options.st_batch =
            self_training ? ScaledKnob(200, args.scale, 10) : 0;
        size_t ac_labels = ScaledKnob(paper_budget, args.scale);
        options.label_budget = options.init_size + ac_labels;
        options.max_iterations =
            static_cast<int>((ac_labels + ac_batch - 1) / ac_batch);
        double f1 = RunActiveArm(fb, options);
        std::printf(" %8.1f", f1);
        std::fflush(stdout);
        c.counters["test_f1_labels" + std::to_string(paper_budget)] = f1;
      }
      std::printf("\n");
      ReportBenchCase(std::move(c));
    }
  }

  std::printf(
      "\npaper reference: Amazon-Google AC 32.8/41.6/48.3 vs Active "
      "50.1/56.5/54.8; Abt-Buy AC 34.0/39.7/45.2 vs Active 42.8/45.1/52.9\n");
  return 0;
}
