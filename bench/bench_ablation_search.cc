// Ablations of AutoEM's own design choices (DESIGN.md §5) — not a paper
// figure, but the evidence behind the implementation decisions:
//
//   (1) SMAC surrogate search vs pure random search at equal budgets
//   (2) meta-learning warm start: seeding dataset B's search with dataset
//       A's winning configuration
//   (3) feature-generation extension: Table II vs Table II + TF-IDF
//
// Shapes to check: SMAC >= random on the incumbent-vs-budget curve; warm
// start reaches the cold-start F1 in fewer evaluations; TF-IDF never hurts
// and can help on token-heavy datasets.
#include <cstdio>

#include "automl/automl_em.h"
#include "bench/bench_util.h"
#include "ml/metrics.h"

namespace {

using namespace autoem;
using namespace autoem::bench;

double BestAtBudget(const std::vector<EvalRecord>& trajectory, size_t n) {
  double best = 0.0;
  for (size_t i = 0; i < trajectory.size() && i < n; ++i) {
    best = std::max(best, trajectory[i].valid_f1);
  }
  return best * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.2, /*evals=*/24);

  // ---- (1) SMAC vs random ---------------------------------------------------
  PrintHeader("Ablation 1: SMAC surrogate search vs random search "
              "(incumbent validation F1 at budget checkpoints)");
  const size_t kCheckpoints[] = {6, 12, 18, 24};
  std::printf("%-16s %-8s", "Dataset", "search");
  for (size_t c : kCheckpoints) std::printf("  ev=%-4zu", c);
  std::printf("\n");
  for (const char* name : {"Amazon-Google", "Abt-Buy"}) {
    if (!args.WantsDataset(name)) continue;
    auto profile = FindProfile(name);
    BenchmarkData data = MustGenerate(*profile, args.seed, args.scale);
    AutoMlEmFeatureGenerator generator;
    FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());
    for (SearchAlgorithm algo :
         {SearchAlgorithm::kSmac, SearchAlgorithm::kRandom}) {
      // Average the incumbent curve over three seeds.
      std::vector<double> at_checkpoint(std::size(kCheckpoints), 0.0);
      for (uint64_t trial = 0; trial < 3; ++trial) {
        AutoMlEmOptions options;
        options.algorithm = algo;
        options.max_evaluations = args.evals;
        options.seed = args.seed + trial * 7919u;
        options.parallelism = args.parallelism();
        options.refit_on_train_plus_valid = false;
        auto run = RunAutoMlEm(fb.train, options);
        if (!run.ok()) continue;
        for (size_t c = 0; c < std::size(kCheckpoints); ++c) {
          at_checkpoint[c] +=
              BestAtBudget(run->trajectory, kCheckpoints[c]) / 3.0;
        }
      }
      std::printf("%-16s %-8s", name,
                  algo == SearchAlgorithm::kSmac ? "smac" : "random");
      for (double v : at_checkpoint) std::printf("  %6.1f", v);
      std::printf("\n");
      BenchCase c = DatasetCase("ablation_smac_vs_random", name, args);
      c.params["search"] = algo == SearchAlgorithm::kSmac ? "smac" : "random";
      for (size_t i = 0; i < std::size(kCheckpoints); ++i) {
        c.counters["valid_f1_ev" + std::to_string(kCheckpoints[i])] =
            at_checkpoint[i];
      }
      ReportBenchCase(std::move(c));
    }
  }
  std::printf("expected: smac >= random as the budget grows; at small budgets\n"
              "the two are within noise (the surrogate needs history)\n");

  // ---- (2) warm start across datasets -----------------------------------------
  PrintHeader("Ablation 2: meta-learning warm start (Walmart-Amazon winner "
              "seeding Amazon-Google's search)");
  {
    auto source = FindProfile("Walmart-Amazon");
    BenchmarkData source_data = MustGenerate(*source, args.seed, args.scale);
    AutoMlEmFeatureGenerator source_gen;
    FeaturizedBenchmark source_fb = Featurize(source_data, &source_gen, args.parallelism());
    AutoMlEmOptions source_options;
    source_options.max_evaluations = args.evals;
    source_options.seed = args.seed;
    source_options.parallelism = args.parallelism();
    auto source_run = RunAutoMlEm(source_fb.train, source_options);
    if (!source_run.ok()) return 1;

    auto target = FindProfile("Amazon-Google");
    BenchmarkData target_data = MustGenerate(*target, args.seed, args.scale);
    AutoMlEmFeatureGenerator target_gen;
    FeaturizedBenchmark target_fb = Featurize(target_data, &target_gen, args.parallelism());

    const size_t kSmallBudgets[] = {4, 8, 12};
    std::printf("%-12s", "arm");
    for (size_t b : kSmallBudgets) std::printf("  ev=%-4zu", b);
    std::printf("\n");
    for (bool warm : {false, true}) {
      std::printf("%-12s", warm ? "warm-start" : "cold-start");
      BenchCase c = DatasetCase("ablation_warm_start", "Amazon-Google", args);
      c.params["source_dataset"] = "Walmart-Amazon";
      c.params["arm"] = warm ? "warm_start" : "cold_start";
      for (size_t budget : kSmallBudgets) {
        double total = 0.0;
        for (uint64_t trial = 0; trial < 3; ++trial) {
          AutoMlEmOptions options;
          options.max_evaluations = static_cast<int>(budget);
          options.seed = args.seed + trial * 104729u;
          options.parallelism = args.parallelism();
          options.refit_on_train_plus_valid = false;
          if (warm) {
            options.warm_start_configs = {source_run->best_config};
          }
          auto run = RunAutoMlEm(target_fb.train, options);
          if (run.ok()) total += run->best_valid_f1 * 100.0 / 3.0;
        }
        std::printf("  %6.1f", total);
        c.counters["valid_f1_ev" + std::to_string(budget)] = total;
      }
      std::printf("\n");
      ReportBenchCase(std::move(c));
    }
    std::printf("note: the warm config is evaluated first, so the seeded arm\n"
                "can never end below its transferred score; whether it beats\n"
                "the default-config cold start depends on dataset affinity\n");
  }

  // ---- (3) TF-IDF feature extension ----------------------------------------------
  PrintHeader("Ablation 3: Table II features vs Table II + TF-IDF "
              "(test F1 under the same search)");
  std::printf("%-20s %10s %12s\n", "Dataset", "Table II", "+ TF-IDF");
  for (const char* name : {"DBLP-Scholar", "Amazon-Google", "Abt-Buy"}) {
    if (!args.WantsDataset(name)) continue;
    auto profile = FindProfile(name);
    BenchmarkData data = MustGenerate(*profile, args.seed, args.scale);
    double f1[2] = {0.0, 0.0};
    const char* generators[2] = {"automl_em", "automl_em_tfidf"};
    for (int g = 0; g < 2; ++g) {
      auto generator = CreateFeatureGenerator(generators[g]);
      if (!generator.ok()) return 1;
      FeaturizedBenchmark fb = Featurize(data, generator->get(), args.parallelism());
      AutoMlEmOptions options;
      options.max_evaluations = args.evals;
      options.seed = args.seed;
      options.parallelism = args.parallelism();
      auto run = RunAutoMlEm(fb.train, options);
      if (run.ok()) {
        f1[g] = F1Score(fb.test.y, run->model.Predict(fb.test.X)) * 100.0;
      }
    }
    std::printf("%-20s %10.1f %12.1f\n", name, f1[0], f1[1]);
    BenchCase c = DatasetCase("ablation_tfidf_features", name, args);
    c.counters["table2_test_f1"] = f1[0];
    c.counters["table2_tfidf_test_f1"] = f1[1];
    ReportBenchCase(std::move(c));
  }
  std::printf("expected: within noise overall; helps where rare shared tokens\n"
              "are decisive (e.g. Amazon-Google version strings)\n");
  return 0;
}
