// Overhead of the autoem::obs instrumentation layer.
//
// The acceptance bar for the obs subsystem is "zero measurable overhead when
// tracing is off". Two angles:
//
//   1. Guard micro-benches: the per-call cost of a disabled span, a disabled
//      log statement, a counter add, and a histogram observe. The first two
//      must be in the single-nanosecond range (one relaxed atomic load); the
//      last two stay cheap because shards are cache-line padded.
//   2. A real workload (feature generation, the hottest instrumented path)
//      run with obs off vs with tracing on. `vs_off_baseline_s` exposes the
//      off-mode baseline; the tracing-on run's time/iteration should match
//      it within noise.
//
// Counters land in `--benchmark_format=json`; obs flags (--trace-out= etc.)
// are peeled off before google-benchmark parses the command line.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_gbench_report.h"
#include "common/parallelism.h"
#include "datagen/benchmark_gen.h"
#include "features/feature_gen.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace autoem {
namespace {

// ---- guard micro-benches --------------------------------------------------

void BM_SpanGuardDisabled(benchmark::State& state) {
  // Tracing must be off for this binary's benchmark run (no --trace-out).
  for (auto _ : state) {
    obs::Span span("bench.disabled");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanGuardDisabled);

void BM_LogGuardDisabled(benchmark::State& state) {
  obs::SetMinLogLevel(obs::LogLevel::kWarn);
  uint64_t x = 0;
  for (auto _ : state) {
    // The macro's guard must short-circuit before evaluating ++x.
    AUTOEM_LOG(DEBUG) << "never emitted " << ++x;
    benchmark::DoNotOptimize(x);
  }
  if (x != 0) state.SkipWithError("disabled log evaluated its arguments");
}
BENCHMARK(BM_LogGuardDisabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("bench.overhead_counter");
  for (auto _ : state) {
    counter->Add();
  }
  benchmark::DoNotOptimize(counter->Total());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("bench.overhead_hist");
  double v = 0.0;
  for (auto _ : state) {
    hist->Observe(v);
    v += 0.125;
    if (v > 100.0) v = 0.0;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_ProfilerGuardDisabled(benchmark::State& state) {
  // Without --profile-out, ProfilingEnabled() is the only profiler cost a
  // Span adds: one relaxed atomic load plus an untaken branch, same
  // single-nanosecond bar as the disabled span/log/probe guards.
  if (obs::ProfilingEnabled()) {
    state.SkipWithError("profiler unexpectedly enabled");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::ProfilingEnabled());
  }
}
BENCHMARK(BM_ProfilerGuardDisabled);

void BM_SpanProfilerDisabled(benchmark::State& state) {
  // Full Span construct/destruct with both tracing and profiling off: the
  // span must stay in the single-nanosecond range even though its
  // constructor now also checks the profiler guard.
  if (obs::TracingEnabled() || obs::ProfilingEnabled()) {
    state.SkipWithError("tracing/profiling unexpectedly enabled");
    return;
  }
  for (auto _ : state) {
    obs::Span span("bench.profiler_disabled");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanProfilerDisabled);

void BM_FlowStartDisabled(benchmark::State& state) {
  // ThreadPool::Submit calls EmitFlowStart on every task; with tracing off it
  // must return 0 after a single relaxed atomic load — the same
  // single-nanosecond bar as the disabled span guard, because every pool
  // submission in the program pays this cost unconditionally.
  if (obs::TracingEnabled()) {
    state.SkipWithError("tracing unexpectedly enabled");
    return;
  }
  for (auto _ : state) {
    uint64_t id = obs::EmitFlowStart("bench.flow_disabled");
    benchmark::DoNotOptimize(id);
    // EmitFlowFinish with id 0 is the disabled/unlinked no-op path RunTask
    // takes for every untraced task.
    obs::EmitFlowFinish("bench.flow_disabled", id);
  }
}
BENCHMARK(BM_FlowStartDisabled);

void BM_ResourceProbeDisabled(benchmark::State& state) {
  // Without --resources every probe placed on a trial/fold/iteration must
  // collapse to one relaxed atomic load plus a branch (same bar as the
  // disabled span: single-nanosecond range).
  obs::SetResourceProbesEnabled(false);
  for (auto _ : state) {
    obs::ResourceProbe probe;
    benchmark::DoNotOptimize(probe.active());
  }
}
BENCHMARK(BM_ResourceProbeDisabled);

void BM_ResourceProbeEnabled(benchmark::State& state) {
  // The *enabled* cost for contrast: two thread-CPU clock reads, a
  // getrusage, and an RSS sample per construct+Take pair.
  obs::SetResourceProbesEnabled(true);
  for (auto _ : state) {
    obs::ResourceProbe probe;
    obs::ResourceUsage usage = probe.Take();
    benchmark::DoNotOptimize(usage.cpu_seconds);
  }
  obs::SetResourceProbesEnabled(false);
}
BENCHMARK(BM_ResourceProbeEnabled);

void BM_ThreadPoolGaugeDisabled(benchmark::State& state) {
  // The exact code shape ThreadPool::Submit / RunTask use to gate their
  // queue-depth gauge and tasks-executed counter updates: a relaxed load,
  // branch not taken when probes are off.
  obs::SetResourceProbesEnabled(false);
  obs::Gauge* depth =
      obs::MetricsRegistry::Global().GetGauge("bench.overhead_queue_depth");
  uint64_t updates = 0;
  for (auto _ : state) {
    if (obs::ResourceProbesEnabled()) {
      depth->Set(static_cast<double>(++updates));
    }
    benchmark::DoNotOptimize(updates);
  }
  if (updates != 0) state.SkipWithError("disabled gauge path executed");
}
BENCHMARK(BM_ThreadPoolGaugeDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  // The *enabled* cost, for contrast: clock reads + one mutex push per span.
  // Iterations are pinned so the in-memory event buffer stays small.
  obs::StartTracing();
  for (auto _ : state) {
    obs::Span span("bench.enabled");
    benchmark::DoNotOptimize(span.active());
  }
  obs::StopTracing();
}
BENCHMARK(BM_SpanEnabled)->Iterations(1 << 16);

// ---- real-workload A/B ----------------------------------------------------

struct Workload {
  BenchmarkData data;
  bool ok = false;
};

Workload& SharedWorkload() {
  static Workload* w = [] {
    auto* out = new Workload;
    auto data = GenerateBenchmarkByName("Fodors-Zagats", /*seed=*/13,
                                        /*scale=*/0.3);
    if (data.ok()) {
      out->data = std::move(*data);
      out->ok = true;
    }
    return out;
  }();
  return *w;
}

double MeasureObsOffSeconds() {
  Workload& w = SharedWorkload();
  AutoMlEmFeatureGenerator gen;
  gen.set_parallelism(Parallelism::Serial());
  if (!gen.Plan(w.data.train.left, w.data.train.right).ok()) return 0.0;
  gen.Generate(w.data.train);  // warm-up
  auto start = std::chrono::steady_clock::now();
  constexpr int kReps = 3;
  for (int i = 0; i < kReps; ++i) gen.Generate(w.data.train);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / kReps;
}

double ObsOffBaselineSeconds() {
  static double baseline = MeasureObsOffSeconds();
  return baseline;
}

void RunFeatureGenWorkload(benchmark::State& state, bool tracing) {
  Workload& w = SharedWorkload();
  if (!w.ok) {
    state.SkipWithError("benchmark generation failed");
    return;
  }
  AutoMlEmFeatureGenerator gen;
  gen.set_parallelism(Parallelism::Serial());
  if (!gen.Plan(w.data.train.left, w.data.train.right).ok()) {
    state.SkipWithError("plan failed");
    return;
  }
  double baseline_s = ObsOffBaselineSeconds();  // measured with obs off
  if (tracing) obs::StartTracing();
  for (auto _ : state) {
    Dataset d = gen.Generate(w.data.train);
    benchmark::DoNotOptimize(d.X.rows());
  }
  if (tracing) obs::StopTracing();
  int64_t pairs = static_cast<int64_t>(w.data.train.pairs.size());
  state.SetItemsProcessed(state.iterations() * pairs);
  state.counters["vs_off_baseline_s"] = baseline_s;
  // value * iterations / total_time = baseline_s / mean_iteration_s; 1.0
  // means identical throughput to the obs-off baseline.
  state.counters["throughput_vs_off"] = benchmark::Counter(
      baseline_s, benchmark::Counter::kIsIterationInvariantRate);
}

void BM_FeatureGenObsOff(benchmark::State& state) {
  RunFeatureGenWorkload(state, /*tracing=*/false);
}
BENCHMARK(BM_FeatureGenObsOff)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FeatureGenTracingOn(benchmark::State& state) {
  RunFeatureGenWorkload(state, /*tracing=*/true);
}
BENCHMARK(BM_FeatureGenTracingOn)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace autoem

int main(int argc, char** argv) {
  return autoem::bench::RunGBenchMain(argc, argv);
}
