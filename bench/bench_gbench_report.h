#ifndef AUTOEM_BENCH_BENCH_GBENCH_REPORT_H_
#define AUTOEM_BENCH_BENCH_GBENCH_REPORT_H_

// Shared main() body for the google-benchmark binaries, replacing
// BENCHMARK_MAIN(): peels the autoem flags (--json-out=, the obs flags) off
// the command line before google-benchmark parses it, opens the process
// ObsSession, and runs the suite under a reporter that tees every finished
// run into the standardized BenchReport schema — so `--json-out=F` produces
// the same {name, params, counters, seconds} artifact from a micro-bench as
// from a paper-figure bench.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "obs/obs.h"

namespace autoem {
namespace bench {

/// Console output as usual, plus one BenchCase per per-iteration run
/// (aggregates and errored runs are skipped — the raw runs carry the data).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      BenchCase c;
      c.name = run.benchmark_name();
      double iters = run.iterations > 0
                         ? static_cast<double>(run.iterations)
                         : 1.0;
      c.seconds = run.real_accumulated_time / iters;
      c.counters["iterations"] = static_cast<double>(run.iterations);
      c.counters["cpu_seconds"] = run.cpu_accumulated_time / iters;
      for (const auto& [name, counter] : run.counters) {
        c.counters[name] = counter.value;
      }
      BenchReport::Global().Add(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

/// Drop-in main body:
///   int main(int argc, char** argv) {
///     return autoem::bench::RunGBenchMain(argc, argv);
///   }
inline int RunGBenchMain(int argc, char** argv) {
  obs::ObsOptions obs;
  std::string json_out;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--json-out=")) {
      json_out = arg.substr(11);
    } else if (i == 0 || !obs::ParseObsFlag(arg, &obs)) {
      passthrough.push_back(argv[i]);
    }
  }
  obs::ObsSession session(obs);
  if (!json_out.empty()) BenchReport::Global().SetPath(json_out);

  int filtered_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&filtered_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             passthrough.data())) {
    return 1;
  }
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Explicit flush (the atexit hook also covers std::exit paths) so the
  // artifact is complete before the ObsSession writes its own outputs.
  BenchReport::Global().Flush();
  return 0;
}

}  // namespace bench
}  // namespace autoem

#endif  // AUTOEM_BENCH_BENCH_GBENCH_REPORT_H_
