// Reproduces paper Table IV ("An end-to-end comparison between Magellan and
// AutoML-EM") across the eight Table III benchmarks, plus the Fig. 11-style
// printout of one resulting pipeline.
//
// Shape to check: AutoML-EM >= Magellan on every dataset, with the biggest
// gains on the hard textual ones (Amazon-Google, Abt-Buy, Walmart-Amazon).
#include <cstdio>

#include "automl/automl_em.h"
#include "baselines/magellan_matcher.h"
#include "bench/bench_util.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.25, /*evals=*/24);

  PrintHeader("Table IV: Magellan vs AutoML-EM (test F1, %)");
  std::printf("%-20s %10s %10s %10s\n", "Dataset", "Magellan", "AutoML-EM",
              "dF1");

  // Paper reference numbers for side-by-side reading.
  struct PaperRow {
    const char* name;
    double magellan;
    double automl;
  };
  const PaperRow kPaper[] = {
      {"BeerAdvo-RateBeer", 78.8, 82.3}, {"Fodors-Zagats", 100.0, 100.0},
      {"iTunes-Amazon", 91.2, 96.3},     {"DBLP-ACM", 98.4, 98.4},
      {"DBLP-Scholar", 92.3, 94.6},      {"Amazon-Google", 49.1, 66.4},
      {"Walmart-Amazon", 71.9, 78.5},    {"Abt-Buy", 43.6, 59.2},
  };

  double sum_magellan = 0.0, sum_automl = 0.0;
  int rows = 0;
  std::string example_pipeline;

  for (const auto& profile : BenchmarkProfiles()) {
    if (!args.WantsDataset(profile.name)) continue;
    BenchmarkData data = MustGenerate(profile, args.seed, args.scale);

    MagellanMatcher::Options magellan_options;
    magellan_options.seed = args.seed;
    auto magellan = MagellanMatcher::Train(data.train, magellan_options);
    double magellan_f1 =
        magellan.ok() ? magellan->Evaluate(data.test)->f1 * 100.0 : 0.0;

    AutoMlEmFeatureGenerator generator;
    FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());
    AutoMlEmOptions options;
    options.max_evaluations = args.evals;
    options.seed = args.seed;
    options.parallelism = args.parallelism();
    auto automl = RunAutoMlEm(fb.train, options);
    double automl_f1 = 0.0;
    if (automl.ok()) {
      automl_f1 =
          F1Score(fb.test.y, automl->model.Predict(fb.test.X)) * 100.0;
      if (profile.name == "Abt-Buy") {
        example_pipeline = automl->BestPipelineString();
      }
    }

    sum_magellan += magellan_f1;
    sum_automl += automl_f1;
    ++rows;
    std::printf("%-20s %10.1f %10.1f %+10.1f\n", profile.name.c_str(),
                magellan_f1, automl_f1, automl_f1 - magellan_f1);
    BenchCase c = DatasetCase("table4_end_to_end", profile.name, args);
    c.counters["magellan_f1"] = magellan_f1;
    c.counters["automl_f1"] = automl_f1;
    ReportBenchCase(std::move(c));
  }
  if (rows > 0) {
    std::printf("%-20s %10.1f %10.1f %+10.1f\n", "Average",
                sum_magellan / rows, sum_automl / rows,
                (sum_automl - sum_magellan) / rows);
  }

  std::printf("\npaper reference (copied from Table IV):\n");
  std::printf("%-20s %10s %10s\n", "Dataset", "Magellan", "AutoML-EM");
  for (const auto& row : kPaper) {
    std::printf("%-20s %10.1f %10.1f\n", row.name, row.magellan, row.automl);
  }
  std::printf("%-20s %10.1f %10.1f  (avg gain +5.8)\n", "Average", 78.1,
              83.9);

  if (!example_pipeline.empty()) {
    PrintHeader("Figure 11: example resulting AutoML-EM pipeline (Abt-Buy)");
    std::printf("%s\n", example_pipeline.c_str());
  }
  return 0;
}
