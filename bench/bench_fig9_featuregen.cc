// Reproduces paper Figure 9 ("Comparing the F1 Scores of AutoML with
// Magellan vs AutoML-EM feature generation methods"): the same AutoML search
// run on Table-I features vs Table-II features.
//
// Shape to check: AutoML-EM generates strictly more features and its F1 is
// >= Magellan-features on every dataset, with the biggest gaps on datasets
// with long-text attributes (Abt-Buy, iTunes-Amazon in the paper).
#include <cstdio>

#include "automl/automl_em.h"
#include "bench/bench_util.h"
#include "ml/metrics.h"

namespace {

struct Arm {
  size_t num_features = 0;
  double f1 = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.25, /*evals=*/18);

  PrintHeader(
      "Figure 9: Magellan (Table I) vs AutoML-EM (Table II) feature "
      "generation under the same AutoML search");
  std::printf("%-20s | %8s %8s | %8s %8s | %6s\n", "Dataset", "Mag#f",
              "MagF1", "AEM#f", "AEMF1", "dF1");

  for (const auto& profile : BenchmarkProfiles()) {
    if (!args.WantsDataset(profile.name)) continue;
    BenchmarkData data = MustGenerate(profile, args.seed, args.scale);

    Arm arms[2];
    const char* generators[2] = {"magellan", "automl_em"};
    for (int g = 0; g < 2; ++g) {
      auto generator = CreateFeatureGenerator(generators[g]);
      if (!generator.ok()) return 1;
      FeaturizedBenchmark fb = Featurize(data, generator->get(), args.parallelism());
      AutoMlEmOptions options;
      options.max_evaluations = args.evals;
      options.seed = args.seed;
      options.parallelism = args.parallelism();
      auto result = RunAutoMlEm(fb.train, options);
      arms[g].num_features = fb.num_features;
      arms[g].f1 =
          result.ok()
              ? F1Score(fb.test.y, result->model.Predict(fb.test.X)) * 100.0
              : 0.0;
    }
    std::printf("%-20s | %8zu %8.1f | %8zu %8.1f | %+6.1f\n",
                profile.name.c_str(), arms[0].num_features, arms[0].f1,
                arms[1].num_features, arms[1].f1, arms[1].f1 - arms[0].f1);
    BenchCase c = DatasetCase("fig9_featuregen", profile.name, args);
    c.counters["magellan_features"] = static_cast<double>(arms[0].num_features);
    c.counters["magellan_f1"] = arms[0].f1;
    c.counters["automl_em_features"] =
        static_cast<double>(arms[1].num_features);
    c.counters["automl_em_f1"] = arms[1].f1;
    ReportBenchCase(std::move(c));
  }

  std::printf(
      "\npaper reference (Fig. 9): Magellan #f 36/37/30/18/18/21/32/15,\n"
      "AutoML-EM #f 87/123/155/89/89/72/106/72; dF1 = +1.0 +0 +8.2 +0.1 "
      "+2.0 +3.5 +2.3 +11.1\n");
  return 0;
}
