#ifndef AUTOEM_BENCH_BENCH_ACTIVE_COMMON_H_
#define AUTOEM_BENCH_BENCH_ACTIVE_COMMON_H_

// Shared driver for the AutoML-EM-Active experiments (paper Figs. 13-15).
// The two hard datasets are used, as in the paper (§V-D2). All batch-size
// knobs are scaled alongside the dataset so the pool/batch proportions match
// the paper's full-size runs.

#include <algorithm>
#include <cstdio>

#include "active/active_learner.h"
#include "bench/bench_util.h"
#include "ml/metrics.h"

namespace autoem {
namespace bench {

/// Scales a paper-sized batch knob down with the dataset, keeping a floor.
inline size_t ScaledKnob(size_t paper_value, double scale,
                         size_t floor_value = 4) {
  return std::max<size_t>(
      floor_value,
      static_cast<size_t>(paper_value * std::min(1.0, scale) + 0.5));
}

/// Runs one AutoML-EM-Active configuration on a featurized benchmark and
/// returns the final AutoML-EM test F1 (in percent), averaged over
/// `trials` seeds (active-learning outcomes are high-variance; the paper
/// effects are means over repeated runs).
inline double RunActiveArm(const FeaturizedBenchmark& fb,
                           ActiveLearningOptions options, int trials = 3) {
  double total = 0.0;
  int completed = 0;
  for (int t = 0; t < trials; ++t) {
    ActiveLearningOptions arm = options;
    arm.seed = options.seed + static_cast<uint64_t>(t) * 1000003u;
    arm.automl.seed = arm.seed ^ 0x5bd1e995u;
    GroundTruthOracle oracle(fb.train.y);
    auto result =
        RunAutoMlEmActive(fb.train, &oracle, arm, /*test=*/nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "active run failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    if (!result->automl.has_value()) continue;
    total +=
        F1Score(fb.test.y, result->automl->model.Predict(fb.test.X)) * 100.0;
    ++completed;
  }
  return completed > 0 ? total / completed : 0.0;
}

/// Baseline iteration-model options used by every arm.
inline ActiveLearningOptions BaseActiveOptions(const BenchArgs& args) {
  ActiveLearningOptions options;
  options.model.n_estimators = 80;
  options.automl.max_evaluations = std::max(6, args.evals);
  options.automl.seed = args.seed;
  options.seed = args.seed;
  options.run_automl_at_end = true;
  options.parallelism = args.parallelism();
  return options;
}

}  // namespace bench
}  // namespace autoem

#endif  // AUTOEM_BENCH_BENCH_ACTIVE_COMMON_H_
