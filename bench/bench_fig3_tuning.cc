// Reproduces paper Figure 3 ("The effect of tuning parameters for ML
// pipeline components") on the Abt-Buy profile:
//   3a: random forest max_features sweep (5..70 features)
//   3b: SelectPercentile top-k sweep (5..70 features)
//   3c: RobustScaler q_min sweep (0..50)
// The paper reports the resulting ΔF1 (best - worst) for each sweep:
// 10.08%, 13.99%, 1.17%. The shape to check: (a) and (b) matter a lot,
// (c) matters a little.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ml/metrics.h"
#include "ml/models/random_forest.h"
#include "preprocess/feature_selection.h"
#include "preprocess/imputer.h"
#include "preprocess/scalers.h"

namespace autoem {
namespace {

using bench::BenchArgs;

double TrainRfF1(const Dataset& train, const Dataset& test,
                 double max_features_fraction, uint64_t seed) {
  RandomForestOptions opt;
  opt.n_estimators = 60;
  opt.max_features = max_features_fraction;
  opt.seed = seed;
  RandomForestClassifier rf(opt);
  if (!rf.Fit(train.X, train.y).ok()) return 0.0;
  return F1Score(test.y, rf.Predict(test.X));
}

struct SweepResult {
  double best = 0.0;
  double worst = 1.0;
};

void Report(SweepResult r, const char* label, double paper_delta) {
  std::printf("  %-28s dF1 = %5.2f%%   (paper: %.2f%%)\n", label,
              100.0 * (r.best - r.worst), paper_delta);
}

}  // namespace
}  // namespace autoem

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.6, /*evals=*/0);

  PrintHeader("Figure 3: the effect of tuning pipeline components (Abt-Buy)");
  auto profile = FindProfile("Abt-Buy");
  BenchmarkData data = MustGenerate(*profile, args.seed, args.scale);
  AutoMlEmFeatureGenerator generator;
  FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());

  // Paper protocol (§II-B): train on 4/5, evaluate on 1/5. Our generator
  // already splits train/test at the Table III ratio (~4:1).
  SimpleImputer imputer("mean");
  if (!imputer.Fit(fb.train.X, fb.train.y).ok()) return 1;
  Dataset train = fb.train;
  Dataset test = fb.test;
  train.X = imputer.Apply(train.X);
  test.X = imputer.Apply(test.X);
  const size_t d = train.num_features();
  std::printf("pairs: train=%zu test=%zu features=%zu\n", train.size(),
              test.size(), d);

  // ---- 3a: random forest max_features --------------------------------------
  std::printf("\n[3a] tuning random forest max_features (count of %zu)\n", d);
  SweepResult rf_sweep;
  for (int k = 5; k <= 70 && k <= static_cast<int>(d); k += 5) {
    double fraction = static_cast<double>(k) / static_cast<double>(d);
    double f1 = TrainRfF1(train, test, fraction, args.seed);
    std::printf("  max_features=%2d  F1=%.4f\n", k, f1);
    rf_sweep.best = std::max(rf_sweep.best, f1);
    rf_sweep.worst = std::min(rf_sweep.worst, f1);
  }

  // ---- 3b: SelectPercentile top-k -------------------------------------------
  std::printf("\n[3b] tuning feature selection (ANOVA-F top-k of %zu)\n", d);
  SweepResult sel_sweep;
  for (int k = 5; k <= 70 && k <= static_cast<int>(d); k += 5) {
    double percentile = 100.0 * k / static_cast<double>(d);
    SelectPercentile sel(percentile, "f_classif");
    if (!sel.Fit(train.X, train.y).ok()) continue;
    Dataset sel_train = train;
    Dataset sel_test = test;
    sel_train.X = sel.Apply(train.X);
    sel_test.X = sel.Apply(test.X);
    double f1 = TrainRfF1(sel_train, sel_test, -1.0, args.seed);
    std::printf("  k=%2d  F1=%.4f\n", k, f1);
    sel_sweep.best = std::max(sel_sweep.best, f1);
    sel_sweep.worst = std::min(sel_sweep.worst, f1);
  }

  // ---- 3c: RobustScaler q_min -------------------------------------------------
  // Note: CART trees are invariant to monotone rescaling, so with a fixed
  // RNG the sweep would be exactly flat. The paper's small dF1 (1.17%) is
  // run-to-run training variance; we reproduce that by re-seeding the
  // forest per setting (what repeated sklearn runs do implicitly) and
  // averaging 3 seeds so the residual variance is of the paper's order.
  std::printf("\n[3c] tuning RobustScaler q_min (q_max=75)\n");
  SweepResult scale_sweep;
  for (int q_min = 0; q_min <= 50; q_min += 5) {
    RobustScaler scaler(std::max(q_min, 1) * 1.0, 75.0);
    if (!scaler.Fit(train.X, train.y).ok()) continue;
    Dataset sc_train = train;
    Dataset sc_test = test;
    sc_train.X = scaler.Apply(train.X);
    sc_test.X = scaler.Apply(test.X);
    double f1 = 0.0;
    for (uint64_t trial = 0; trial < 5; ++trial) {
      f1 += TrainRfF1(sc_train, sc_test, -1.0,
                      args.seed + static_cast<uint64_t>(q_min) * 7 + trial);
    }
    f1 /= 5.0;
    std::printf("  q_min=%2d  F1=%.4f\n", q_min, f1);
    scale_sweep.best = std::max(scale_sweep.best, f1);
    scale_sweep.worst = std::min(scale_sweep.worst, f1);
  }

  std::printf("\nsummary (best - worst over each sweep):\n");
  Report(rf_sweep, "3a random forest", 10.08);
  Report(sel_sweep, "3b feature selection", 13.99);
  Report(scale_sweep, "3c data scaling", 1.17);
  std::printf("expected shape: 3a and 3b large, 3c small\n");
  ReportBenchMetric("fig3a_delta_f1", rf_sweep.best - rf_sweep.worst);
  ReportBenchMetric("fig3b_delta_f1", sel_sweep.best - sel_sweep.worst);
  ReportBenchMetric("fig3c_delta_f1", scale_sweep.best - scale_sweep.worst);
  return 0;
}
