// Overhead of the autoem::fault layer when no fault is armed.
//
// Failpoints and cancellation checks are compiled into production hot paths
// (evaluator trials, RF tree loops, ParallelFor chunks), so the acceptance
// bar is "a few nanoseconds per check when disabled":
//
//   1. AUTOEM_FAILPOINT with nothing armed must cost one relaxed atomic load
//      of the global armed-count — it must not take the registry mutex.
//   2. CancelToken::Check on a default (null) token must be a pointer test.
//   3. CancelToken::Check on a live far-deadline token reads a steady clock —
//      reported for contrast, since that is the price the RF inner loop pays
//      when --max-trial-seconds is set.
//
// The armed-site case is also measured: arming an *unrelated* site flips the
// global gate, so every site now takes the slow path. That cost only exists
// while a test/CI run has faults armed, never in production.
#include <benchmark/benchmark.h>

#include "bench/bench_gbench_report.h"
#include "common/status.h"
#include "fault/cancel.h"
#include "fault/failpoint.h"

namespace autoem {
namespace {

Status GuardedFunction() {
  AUTOEM_FAILPOINT("bench.fault_overhead");
  return Status::OK();
}

void BM_FailpointDisabled(benchmark::State& state) {
  fault::FailpointRegistry::Global().DisarmAll();
  for (auto _ : state) {
    Status st = GuardedFunction();
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_FailpointDisabled);

void BM_FailpointOtherSiteArmed(benchmark::State& state) {
  // Arming any site flips the global gate: every AUTOEM_FAILPOINT now pays a
  // mutex + map lookup. Acceptable for fault-injection runs only.
  fault::FailpointRegistry::Global().Arm("bench.unrelated_site",
                                         fault::FailpointSpec::Error());
  for (auto _ : state) {
    Status st = GuardedFunction();
    benchmark::DoNotOptimize(st.ok());
  }
  fault::FailpointRegistry::Global().DisarmAll();
}
BENCHMARK(BM_FailpointOtherSiteArmed);

void BM_CancelCheckDisabled(benchmark::State& state) {
  fault::CancelToken token;  // default: no deadline, no cancellation
  for (auto _ : state) {
    Status st = token.Check("bench.stage");
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_CancelCheckDisabled);

void BM_CancelCheckLiveDeadline(benchmark::State& state) {
  // A deadline far enough out that it never fires during the bench.
  fault::CancelToken token = fault::CancelToken::WithDeadline(3600.0);
  for (auto _ : state) {
    Status st = token.Check("bench.stage");
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_CancelCheckLiveDeadline);

void BM_CancelledFlagOnly(benchmark::State& state) {
  // The cheap form used inside tight loops that cannot afford a clock read
  // per iteration: Cancelled() latches after Check() has seen the deadline.
  fault::CancelToken token = fault::CancelToken::WithDeadline(3600.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.Cancelled());
  }
}
BENCHMARK(BM_CancelledFlagOnly);

}  // namespace
}  // namespace autoem

int main(int argc, char** argv) {
  return autoem::bench::RunGBenchMain(argc, argv);
}
