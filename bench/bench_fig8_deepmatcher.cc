// Reproduces paper Figure 8 ("Comparison of AutoML-EM with DeepMatcher"):
// test F1 of AutoML-EM vs the DeepMatcher stand-in on all eight benchmarks.
//
// Shape to check: AutoML-EM wins or ties on structured data and stays
// competitive on the textual datasets (the paper's Finding 2). Our deep
// baseline is an embedding-MLP stand-in (see DESIGN.md substitutions), so
// absolute parity with the RNN numbers is not expected.
#include <cstdio>

#include "automl/automl_em.h"
#include "baselines/deep_matcher.h"
#include "bench/bench_util.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.25, /*evals=*/20);

  PrintHeader("Figure 8: AutoML-EM vs DeepMatcher stand-in (test F1, %)");
  std::printf("%-20s %12s %12s\n", "Dataset", "DeepMatcher", "AutoML-EM");

  struct PaperRow {
    const char* name;
    double deep;
    double automl;
  };
  const PaperRow kPaper[] = {
      {"BeerAdvo-RateBeer", 72.7, 80.9}, {"Fodors-Zagats", 100.0, 100.0},
      {"iTunes-Amazon", 88.0, 95.7},     {"DBLP-ACM", 98.4, 98.1},
      {"DBLP-Scholar", 94.7, 94.6},      {"Amazon-Google", 69.3, 63.8},
      {"Walmart-Amazon", 66.9, 79.9},    {"Abt-Buy", 62.8, 58.1},
  };

  for (const auto& profile : BenchmarkProfiles()) {
    if (!args.WantsDataset(profile.name)) continue;
    BenchmarkData data = MustGenerate(profile, args.seed, args.scale);

    DeepMatcherModel::Options deep_options;
    deep_options.seed = args.seed;
    auto deep = DeepMatcherModel::Train(data.train, deep_options);
    double deep_f1 = deep.ok() ? deep->Evaluate(data.test)->f1 * 100.0 : 0.0;

    AutoMlEmFeatureGenerator generator;
    FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());
    AutoMlEmOptions options;
    options.max_evaluations = args.evals;
    options.seed = args.seed;
    options.parallelism = args.parallelism();
    auto automl = RunAutoMlEm(fb.train, options);
    double automl_f1 =
        automl.ok()
            ? F1Score(fb.test.y, automl->model.Predict(fb.test.X)) * 100.0
            : 0.0;

    std::printf("%-20s %12.1f %12.1f\n", profile.name.c_str(), deep_f1,
                automl_f1);
    BenchCase c = DatasetCase("fig8_deepmatcher", profile.name, args);
    c.counters["deepmatcher_f1"] = deep_f1;
    c.counters["automl_f1"] = automl_f1;
    ReportBenchCase(std::move(c));
  }

  std::printf("\npaper reference (copied from Fig. 8):\n");
  std::printf("%-20s %12s %12s\n", "Dataset", "DeepMatcher", "AutoML-EM");
  for (const auto& row : kPaper) {
    std::printf("%-20s %12.1f %12.1f\n", row.name, row.deep, row.automl);
  }
  return 0;
}
