#ifndef AUTOEM_BENCH_BENCH_UTIL_H_
#define AUTOEM_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-reproduction benchmark binaries. Every bench
// accepts:
//   --scale=<f>   dataset size multiplier vs the paper's Table III
//                 (default below 1.0 to keep single-core runtimes sane)
//   --evals=<n>   pipeline-search evaluation budget (the stand-in for the
//                 paper's wall-clock budget; see DESIGN.md)
//   --seed=<n>    RNG seed
//   --datasets=a,b  comma-separated subset of Table III dataset names
// plus the shared observability flags (see src/obs/obs.h):
//   --log-level=<l> --trace-out=<f> --metrics-out=<f>
// A bench run with --metrics-out gets the full autoem::obs metrics snapshot
// (counters/gauges/histograms JSON) written at exit — including any
// bench-reported figures recorded via ReportBenchMetric below. This replaces
// ad-hoc per-bench JSON counter dumps.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/parallelism.h"
#include "common/string_util.h"
#include "datagen/benchmark_gen.h"
#include "features/feature_gen.h"
#include "ml/dataset.h"
#include "obs/obs.h"

namespace autoem {
namespace bench {

struct BenchArgs {
  double scale = 0.2;
  int evals = 20;
  uint64_t seed = 42;
  /// Worker threads for the parallel hot paths (0 = hardware, 1 = serial).
  /// Results are bit-identical at any setting; benches that care report
  /// serial-vs-parallel speedup explicitly.
  int threads = 1;
  std::vector<std::string> datasets;  // empty = all
  obs::ObsOptions obs;
  /// Held for the bench's lifetime; writes --trace-out/--metrics-out at
  /// process exit. Shared so BenchArgs stays copyable.
  std::shared_ptr<obs::ObsSession> session;

  static BenchArgs Parse(int argc, char** argv, double default_scale = 0.2,
                         int default_evals = 20) {
    BenchArgs args;
    args.scale = default_scale;
    args.evals = default_evals;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (StartsWith(arg, "--scale=")) {
        args.scale = std::atof(arg.c_str() + 8);
      } else if (StartsWith(arg, "--evals=")) {
        args.evals = std::atoi(arg.c_str() + 8);
      } else if (StartsWith(arg, "--seed=")) {
        args.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
      } else if (StartsWith(arg, "--threads=")) {
        args.threads = std::atoi(arg.c_str() + 10);
      } else if (StartsWith(arg, "--datasets=")) {
        args.datasets = Split(arg.substr(11), ',');
      } else if (obs::ParseObsFlag(arg, &args.obs)) {
        // --log-level= / --trace-out= / --metrics-out=
      } else if (arg == "--full") {
        args.scale = 1.0;
      } else if (arg == "--help") {
        std::printf(
            "flags: --scale=F --evals=N --seed=N --threads=N "
            "--datasets=a,b --full\n"
            "       --log-level=L --trace-out=F --metrics-out=F\n");
        std::exit(0);
      }
    }
    if (args.obs.Any()) {
      args.session = std::make_shared<obs::ObsSession>(args.obs);
    }
    return args;
  }

  Parallelism parallelism() const { return Parallelism{threads}; }

  bool WantsDataset(const std::string& name) const {
    if (datasets.empty()) return true;
    for (const auto& d : datasets) {
      if (d == name) return true;
    }
    return false;
  }
};

/// Featurized train/test for one generated benchmark.
struct FeaturizedBenchmark {
  DatasetProfile profile;
  Dataset train;
  Dataset test;
  size_t num_features = 0;
};

inline FeaturizedBenchmark Featurize(const BenchmarkData& data,
                                     FeatureGenerator* generator,
                                     const Parallelism& parallelism = {}) {
  FeaturizedBenchmark out;
  out.profile = data.profile;
  generator->set_parallelism(parallelism);
  Status st = generator->Plan(data.train.left, data.train.right);
  if (!st.ok()) {
    std::fprintf(stderr, "feature plan failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  out.train = generator->Generate(data.train);
  out.test = generator->Generate(data.test);
  out.num_features = generator->num_features();
  return out;
}

inline BenchmarkData MustGenerate(const DatasetProfile& profile,
                                  uint64_t seed, double scale) {
  auto data = GenerateBenchmark(profile, seed, scale);
  if (!data.ok()) {
    std::fprintf(stderr, "generate %s failed: %s\n", profile.name.c_str(),
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*data);
}

/// Records one bench-level figure (an F1, a speedup, a wall-clock) as a
/// gauge named `bench.<name>` so it lands in the --metrics-out snapshot next
/// to the library's own counters — one JSON, one schema, no per-bench
/// serializer.
inline void ReportBenchMetric(const std::string& name, double value) {
  obs::MetricsRegistry::Global().GetGauge("bench." + name)->Set(value);
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace autoem

#endif  // AUTOEM_BENCH_BENCH_UTIL_H_
