#ifndef AUTOEM_BENCH_BENCH_UTIL_H_
#define AUTOEM_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-reproduction benchmark binaries. Every bench
// accepts:
//   --scale=<f>   dataset size multiplier vs the paper's Table III
//                 (default below 1.0 to keep single-core runtimes sane)
//   --evals=<n>   pipeline-search evaluation budget (the stand-in for the
//                 paper's wall-clock budget; see DESIGN.md)
//   --seed=<n>    RNG seed
//   --datasets=a,b  comma-separated subset of Table III dataset names
//   --json-out=<f>  standardized results artifact: every reported case in
//                 the common {name, params, counters, seconds} schema (the
//                 CI bench-snapshot job uploads these as BENCH_*.json)
// plus the shared observability flags (see src/obs/obs.h):
//   --log-level=<l> --trace-out=<f> --metrics-out=<f> --metrics-format=<f>
//   --metrics-flush-interval=<s> --resources --profile-out=<f>
//   --profile-hz=<n>
// A bench run with --metrics-out gets the full autoem::obs metrics snapshot
// (counters/gauges/histograms JSON) written at exit — including any
// bench-reported figures recorded via ReportBenchMetric below. This replaces
// ad-hoc per-bench JSON counter dumps.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallelism.h"
#include "common/string_util.h"
#include "datagen/benchmark_gen.h"
#include "features/feature_gen.h"
#include "io/atomic_file.h"
#include "ml/dataset.h"
#include "obs/json.h"
#include "obs/obs.h"

namespace autoem {
namespace bench {

/// One measured case in the standardized bench output schema. Every bench
/// binary — google-benchmark micro-benches (via the tee reporter in
/// bench_gbench_report.h) and the paper-figure benches (via
/// ReportBenchMetric / ReportBenchCase) — serializes its results as a list
/// of these, so CI can diff BENCH_*.json artifacts across runs without
/// per-bench parsers.
struct BenchCase {
  std::string name;
  /// Workload identification: dataset, scale, threads, ... (strings so the
  /// schema stays closed under any flag type).
  std::map<std::string, std::string> params;
  /// Measured figures other than time: items/s, F1, speedup, iterations.
  std::map<std::string, double> counters;
  /// Wall-clock seconds per iteration of the measured region (0 when the
  /// case is a dimensionless figure).
  double seconds = 0.0;
};

/// Machine/build provenance stamped into every --json-out artifact so a
/// BENCH_*.json is interpretable (and comparable) on its own: a baseline
/// diff against a file from different hardware or an unknown commit is a
/// judgement call, and the metadata is what makes it visible.
struct BenchMeta {
  std::string git_sha;    // $GITHUB_SHA / $AUTOEM_GIT_SHA, else "unknown"
  std::string cpu_model;  // /proc/cpuinfo "model name", else "unknown"
  unsigned threads = 0;   // hardware threads on the machine that ran it

  static BenchMeta Collect() {
    BenchMeta meta;
    const char* sha = std::getenv("GITHUB_SHA");
    if (sha == nullptr || *sha == '\0') sha = std::getenv("AUTOEM_GIT_SHA");
    meta.git_sha = (sha != nullptr && *sha != '\0') ? sha : "unknown";
    meta.cpu_model = "unknown";
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      if (line.compare(0, 10, "model name") == 0) {
        size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) meta.cpu_model = line.substr(start);
        break;
      }
    }
    meta.threads = std::thread::hardware_concurrency();
    return meta;
  }
};

/// Process-global collector behind `--json-out=F`: cases accumulate here
/// and are written once, atomically, at process exit (and on Flush()).
class BenchReport {
 public:
  static BenchReport& Global() {
    static BenchReport* report = new BenchReport;
    return *report;
  }

  void Add(BenchCase c) {
    std::lock_guard<std::mutex> lock(mu_);
    cases_.push_back(std::move(c));
  }

  /// Arms the at-exit write. Safe to call at most once per process (extra
  /// calls just update the path).
  void SetPath(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu_);
    bool arm = path_.empty() && !path.empty();
    path_ = path;
    if (arm) std::atexit(&BenchReport::FlushAtExit);
  }

  /// `{"meta":{git_sha,cpu_model,threads},"cases":[{name, params,
  /// counters, seconds}, ...]}`
  std::string ToJson() const {
    BenchMeta meta = BenchMeta::Collect();
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"meta\":{\"git_sha\":" + obs::JsonQuote(meta.git_sha) +
                      ",\"cpu_model\":" + obs::JsonQuote(meta.cpu_model) +
                      ",\"threads\":" + std::to_string(meta.threads) +
                      "},\"cases\":[";
    for (size_t i = 0; i < cases_.size(); ++i) {
      const BenchCase& c = cases_[i];
      out += i == 0 ? "\n" : ",\n";
      out += "{\"name\":" + obs::JsonQuote(c.name) + ",\"params\":{";
      bool first = true;
      for (const auto& [k, v] : c.params) {
        if (!first) out += ",";
        first = false;
        out += obs::JsonQuote(k) + ":" + obs::JsonQuote(v);
      }
      out += "},\"counters\":{";
      first = true;
      for (const auto& [k, v] : c.counters) {
        if (!first) out += ",";
        first = false;
        out += obs::JsonQuote(k) + ":" + obs::JsonNumber(v);
      }
      out += "},\"seconds\":" + obs::JsonNumber(c.seconds) + "}";
    }
    out += "\n]}\n";
    return out;
  }

  void Flush() {
    std::string path;
    {
      std::lock_guard<std::mutex> lock(mu_);
      path = path_;
    }
    if (path.empty()) return;
    Status st = io::AtomicWriteFile(path, ToJson());
    if (!st.ok()) {
      AUTOEM_LOG(WARN) << "bench: failed to write " << path << ": "
                       << st.ToString();
    }
  }

 private:
  BenchReport() = default;
  static void FlushAtExit() { Global().Flush(); }

  mutable std::mutex mu_;
  std::string path_;
  std::vector<BenchCase> cases_;
};

struct BenchArgs {
  double scale = 0.2;
  int evals = 20;
  uint64_t seed = 42;
  /// Standardized bench output: when non-empty, every ReportBenchMetric /
  /// ReportBenchCase call accumulates into BenchReport and the whole run is
  /// written to this path as `{"cases":[{name,params,counters,seconds}]}`.
  std::string json_out;
  /// Worker threads for the parallel hot paths (0 = hardware, 1 = serial).
  /// Results are bit-identical at any setting; benches that care report
  /// serial-vs-parallel speedup explicitly.
  int threads = 1;
  std::vector<std::string> datasets;  // empty = all
  obs::ObsOptions obs;
  /// Held for the bench's lifetime; writes --trace-out/--metrics-out at
  /// process exit. Shared so BenchArgs stays copyable.
  std::shared_ptr<obs::ObsSession> session;

  static BenchArgs Parse(int argc, char** argv, double default_scale = 0.2,
                         int default_evals = 20) {
    BenchArgs args;
    args.scale = default_scale;
    args.evals = default_evals;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (StartsWith(arg, "--scale=")) {
        args.scale = std::atof(arg.c_str() + 8);
      } else if (StartsWith(arg, "--evals=")) {
        args.evals = std::atoi(arg.c_str() + 8);
      } else if (StartsWith(arg, "--seed=")) {
        args.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
      } else if (StartsWith(arg, "--threads=")) {
        args.threads = std::atoi(arg.c_str() + 10);
      } else if (StartsWith(arg, "--datasets=")) {
        args.datasets = Split(arg.substr(11), ',');
      } else if (StartsWith(arg, "--json-out=")) {
        args.json_out = arg.substr(11);
      } else if (obs::ParseObsFlag(arg, &args.obs)) {
        // --log-level= / --trace-out= / --metrics-out= / --resources /
        // --metrics-flush-interval= / --metrics-format= / --profile-out= /
        // --profile-hz=
      } else if (arg == "--full") {
        args.scale = 1.0;
      } else if (arg == "--help") {
        std::printf(
            "flags: --scale=F --evals=N --seed=N --threads=N "
            "--datasets=a,b --full --json-out=F\n"
            "       --log-level=L --trace-out=F --metrics-out=F "
            "--metrics-format=F --metrics-flush-interval=S --resources\n"
            "       --profile-out=F --profile-hz=N\n");
        std::exit(0);
      }
    }
    if (!args.json_out.empty()) {
      BenchReport::Global().SetPath(args.json_out);
    }
    if (args.obs.Any()) {
      args.session = std::make_shared<obs::ObsSession>(args.obs);
    }
    return args;
  }

  Parallelism parallelism() const { return Parallelism{threads}; }

  bool WantsDataset(const std::string& name) const {
    if (datasets.empty()) return true;
    for (const auto& d : datasets) {
      if (d == name) return true;
    }
    return false;
  }
};

/// Featurized train/test for one generated benchmark.
struct FeaturizedBenchmark {
  DatasetProfile profile;
  Dataset train;
  Dataset test;
  size_t num_features = 0;
};

inline FeaturizedBenchmark Featurize(const BenchmarkData& data,
                                     FeatureGenerator* generator,
                                     const Parallelism& parallelism = {}) {
  FeaturizedBenchmark out;
  out.profile = data.profile;
  generator->set_parallelism(parallelism);
  Status st = generator->Plan(data.train.left, data.train.right);
  if (!st.ok()) {
    AUTOEM_LOG(ERROR) << "feature plan failed: " << st.ToString();
    std::exit(1);
  }
  out.train = generator->Generate(data.train);
  out.test = generator->Generate(data.test);
  out.num_features = generator->num_features();
  return out;
}

inline BenchmarkData MustGenerate(const DatasetProfile& profile,
                                  uint64_t seed, double scale) {
  auto data = GenerateBenchmark(profile, seed, scale);
  if (!data.ok()) {
    AUTOEM_LOG(ERROR) << "generate " << profile.name
                      << " failed: " << data.status().ToString();
    std::exit(1);
  }
  return std::move(*data);
}

/// Records a fully-described case into the --json-out report.
inline void ReportBenchCase(BenchCase c) {
  BenchReport::Global().Add(std::move(c));
}

/// Starts a per-dataset case with the standard workload params
/// (dataset/scale/evals/seed/threads) filled in from the parsed args; the
/// bench adds its measured counters and calls ReportBenchCase.
inline BenchCase DatasetCase(const std::string& bench,
                             const std::string& dataset,
                             const BenchArgs& args) {
  BenchCase c;
  c.name = bench + "/" + dataset;
  c.params["dataset"] = dataset;
  c.params["scale"] = std::to_string(args.scale);
  c.params["evals"] = std::to_string(args.evals);
  c.params["seed"] = std::to_string(args.seed);
  c.params["threads"] = std::to_string(args.threads);
  return c;
}

/// Records one bench-level figure (an F1, a speedup, a wall-clock) twice:
/// as a gauge named `bench.<name>` so it lands in the --metrics-out
/// snapshot next to the library's own counters, and as a BenchCase (counter
/// key "value") in the standardized --json-out report.
inline void ReportBenchMetric(const std::string& name, double value) {
  obs::MetricsRegistry::Global().GetGauge("bench." + name)->Set(value);
  BenchCase c;
  c.name = name;
  c.counters["value"] = value;
  ReportBenchCase(std::move(c));
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace autoem

#endif  // AUTOEM_BENCH_BENCH_UTIL_H_
