// Batch scoring throughput: a trained matcher streaming candidate pairs
// through `ScorePairsBatched` (the `autoem_cli predict` hot path) versus the
// all-at-once `ScorePairs` baseline. Counters:
//   threads         worker-thread setting for the run
//   chunk_size      pairs per chunk (0 = unchunked ScorePairs baseline)
//   pairs_per_sec   scored pairs per wall-clock second
// The chunked path exists for bounded peak memory, not speed — the bar is
// throughput within noise of unchunked at matching thread counts (the
// per-chunk dispatch overhead is amortized at the default 4096).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "bench/bench_gbench_report.h"
#include "common/parallelism.h"
#include "datagen/benchmark_gen.h"
#include "em/matcher.h"

namespace autoem {
namespace {

struct Workload {
  BenchmarkData data;
  std::unique_ptr<EntityMatcher> matcher;
  bool ok = false;
};

// Walmart-Amazon: widest generated schema, most representative per-pair
// featurization cost. Trained once (2 evaluations — the bench measures
// scoring, not search) and shared across every benchmark run.
Workload& SharedWorkload() {
  static Workload* w = [] {
    auto* out = new Workload;
    auto data = GenerateBenchmarkByName("Walmart-Amazon", /*seed=*/11,
                                        /*scale=*/0.1);
    if (!data.ok()) {
      std::fprintf(stderr, "benchmark generation failed: %s\n",
                   data.status().ToString().c_str());
      std::exit(1);
    }
    EntityMatcher::Options options;
    options.automl.max_evaluations = 2;
    options.automl.seed = 17;
    options.automl.parallelism = Parallelism::Threads(0);
    auto matcher = EntityMatcher::Train(data->train, options);
    if (!matcher.ok()) {
      std::fprintf(stderr, "matcher training failed: %s\n",
                   matcher.status().ToString().c_str());
      std::exit(1);
    }
    out->data = std::move(*data);
    out->matcher = std::make_unique<EntityMatcher>(std::move(*matcher));
    out->ok = true;
    return out;
  }();
  return *w;
}

void RunScoring(benchmark::State& state, size_t chunk_size) {
  Workload& w = SharedWorkload();
  if (!w.ok) {
    state.SkipWithError("workload setup failed");
    return;
  }
  int threads = static_cast<int>(state.range(0));
  w.matcher->SetParallelism(Parallelism::Threads(threads));
  size_t pairs_scored = 0;
  for (auto _ : state) {
    auto scores = chunk_size == 0
                      ? w.matcher->ScorePairs(w.data.test)
                      : w.matcher->ScorePairsBatched(w.data.test, chunk_size);
    if (!scores.ok()) {
      state.SkipWithError(
          ("scoring failed: " + scores.status().ToString()).c_str());
      return;
    }
    benchmark::DoNotOptimize(scores->data());
    pairs_scored += scores->size();
  }
  state.counters["threads"] = threads;
  state.counters["chunk_size"] = static_cast<double>(chunk_size);
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs_scored), benchmark::Counter::kIsRate);
}

void BM_ScorePairsUnchunked(benchmark::State& state) {
  RunScoring(state, /*chunk_size=*/0);
}

void BM_ScorePairsBatched(benchmark::State& state) {
  RunScoring(state, /*chunk_size=*/4096);
}

void BM_ScorePairsBatchedSmallChunks(benchmark::State& state) {
  RunScoring(state, /*chunk_size=*/256);
}

BENCHMARK(BM_ScorePairsUnchunked)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_ScorePairsBatched)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_ScorePairsBatchedSmallChunks)->Arg(4);

}  // namespace
}  // namespace autoem

int main(int argc, char** argv) {
  return autoem::bench::RunGBenchMain(argc, argv);
}
