// Serial-vs-parallel throughput for the feature-generation hot path.
//
// Each BM_* runs the same `FeatureGenerator::Generate` workload at
// state.range(0) worker threads; the acceptance target is >= 2x speedup at
// 4+ threads on multicore hardware (on a single-core host all settings
// degrade to the serial path and report ~1x). Counters:
//   threads         worker-thread setting for the run
//   pairs_per_sec   featurized pairs per wall-clock second
//   speedup         throughput relative to the 1-thread run of the same
//                   workload, measured once up front
// All counters land in `--benchmark_format=json` output automatically.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_gbench_report.h"
#include "common/parallelism.h"
#include "datagen/benchmark_gen.h"
#include "features/feature_gen.h"
#include "obs/obs.h"

namespace autoem {
namespace {

struct Workload {
  BenchmarkData data;
  bool ok = false;
};

// Walmart-Amazon has the widest schema of the generated profiles, so its
// featurization cost per pair is the most representative of the paper's
// heavier datasets.
Workload& SharedWorkload() {
  static Workload* w = [] {
    auto* out = new Workload;
    auto data = GenerateBenchmarkByName("Walmart-Amazon", /*seed=*/11,
                                        /*scale=*/0.05);
    if (!data.ok()) {
      std::fprintf(stderr, "benchmark generation failed: %s\n",
                   data.status().ToString().c_str());
      std::exit(1);
    }
    out->data = std::move(*data);
    out->ok = true;
    return out;
  }();
  return *w;
}

double MeasureSerialSeconds(bool include_tfidf) {
  Workload& w = SharedWorkload();
  AutoMlEmFeatureGenerator gen(include_tfidf);
  gen.set_parallelism(Parallelism::Serial());
  Status planned = gen.Plan(w.data.train.left, w.data.train.right);
  if (!planned.ok()) {
    // A silent 0.0 baseline would report speedup_vs_serial == 0 and look
    // like a perf regression; refuse to run instead.
    std::fprintf(stderr, "serial baseline plan failed: %s\n",
                 planned.ToString().c_str());
    std::exit(1);
  }
  gen.Generate(w.data.train);  // warm-up
  auto start = std::chrono::steady_clock::now();
  constexpr int kReps = 3;
  for (int i = 0; i < kReps; ++i) gen.Generate(w.data.train);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / kReps;
}

double SerialBaselineSeconds(bool include_tfidf) {
  static std::map<bool, double>* cache = new std::map<bool, double>;
  auto it = cache->find(include_tfidf);
  if (it == cache->end()) {
    it = cache->emplace(include_tfidf, MeasureSerialSeconds(include_tfidf))
             .first;
  }
  return it->second;
}

void RunFeatureGen(benchmark::State& state, bool include_tfidf) {
  Workload& w = SharedWorkload();
  if (!w.ok) {
    state.SkipWithError("benchmark generation failed");
    return;
  }
  int threads = static_cast<int>(state.range(0));
  AutoMlEmFeatureGenerator gen(include_tfidf);
  gen.set_parallelism(Parallelism::Threads(threads));
  Status planned = gen.Plan(w.data.train.left, w.data.train.right);
  if (!planned.ok()) {
    state.SkipWithError(("plan failed: " + planned.ToString()).c_str());
    return;
  }
  obs::SetAllocationCounting(true);
  uint64_t allocs_before = obs::AllocationCount();
  for (auto _ : state) {
    Dataset d = gen.Generate(w.data.train);
    benchmark::DoNotOptimize(d.X.rows());
  }
  uint64_t allocs_after = obs::AllocationCount();
  int64_t pairs = static_cast<int64_t>(w.data.train.pairs.size());
  state.SetItemsProcessed(state.iterations() * pairs);
  state.counters["threads"] = threads;
  // Heap allocations per featurized pair across the timed loop. The arena
  // tokenizers and interned token-ID caches exist to push this toward the
  // floor of one matrix + cache build per Generate call.
  state.counters["allocs_per_pair"] =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(std::max<int64_t>(1, state.iterations() * pairs));
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * pairs),
      benchmark::Counter::kIsRate);
  double serial_s = SerialBaselineSeconds(include_tfidf);
  state.counters["serial_baseline_s"] = serial_s;
  // kIsIterationInvariantRate reports value * iterations / total_time, i.e.
  // serial_baseline_s / mean_iteration_s — the speedup over the serial run.
  state.counters["speedup_vs_serial"] = benchmark::Counter(
      serial_s, benchmark::Counter::kIsIterationInvariantRate);
  // Mirror into the obs metrics registry so a --metrics-out run captures the
  // baseline next to the library's own counters, in the shared snapshot
  // format.
  obs::MetricsRegistry::Global()
      .GetGauge(std::string("bench.featuregen_serial_baseline_s") +
                (include_tfidf ? "_tfidf" : ""))
      ->Set(serial_s);
}

void BM_ParallelFeatureGen(benchmark::State& state) {
  RunFeatureGen(state, /*include_tfidf=*/false);
}
BENCHMARK(BM_ParallelFeatureGen)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelFeatureGenTfIdf(benchmark::State& state) {
  RunFeatureGen(state, /*include_tfidf=*/true);
}
BENCHMARK(BM_ParallelFeatureGenTfIdf)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace autoem

int main(int argc, char** argv) {
  return autoem::bench::RunGBenchMain(argc, argv);
}
