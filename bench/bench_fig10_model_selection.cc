// Reproduces paper Figure 10 ("Model Selection for AutoML-EM"): for each
// dataset, validation and test F1 of the incumbent pipeline as the search
// budget grows, for the full model space ("all-model") vs the AutoML-EM
// restriction ("random forest").
//
// Budget mapping: the paper sweeps wall-clock 60..8400 s on a Xeon E7; we
// sweep surrogate-search evaluation counts and report the incumbent at
// checkpoints (see DESIGN.md substitutions). An extra --search=random arm
// ablates SMAC vs pure random search.
//
// Shape to check: (1) scores never degrade with budget; (2) the RF-only
// space converges in fewer evaluations; (3) all-model can end slightly
// higher at the largest budgets.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "automl/automl_em.h"
#include "bench/bench_util.h"
#include "ml/metrics.h"

namespace {

const int kCheckpoints[] = {4, 8, 12, 16, 24, 32};
// The paper's corresponding wall-clock ladder, for row labeling only.
const int kPaperSeconds[] = {60, 300, 600, 1200, 2400, 3600};

}  // namespace

int main(int argc, char** argv) {
  using namespace autoem;
  using namespace autoem::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv, /*scale=*/0.15, /*evals=*/32);
  SearchAlgorithm algorithm = SearchAlgorithm::kSmac;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--search=random") == 0) {
      algorithm = SearchAlgorithm::kRandom;
    }
  }

  PrintHeader(
      "Figure 10: all-model vs random-forest-only model space across "
      "search budgets (incumbent valid/test F1)");
  std::printf("budget checkpoints (evaluations): ");
  for (int c : kCheckpoints) std::printf("%d ", c);
  std::printf("  [paper wall-clock: 60..3600 s]\n");

  for (const auto& profile : BenchmarkProfiles()) {
    if (!args.WantsDataset(profile.name)) continue;
    BenchmarkData data = MustGenerate(profile, args.seed, args.scale);
    AutoMlEmFeatureGenerator generator;
    FeaturizedBenchmark fb = Featurize(data, &generator, args.parallelism());

    std::printf("\n%s\n", profile.name.c_str());
    for (ModelSpace space :
         {ModelSpace::kAllModels, ModelSpace::kRandomForestOnly}) {
      AutoMlEmOptions options;
      options.model_space = space;
      options.algorithm = algorithm;
      options.max_evaluations = args.evals;
      options.seed = args.seed;
      options.parallelism = args.parallelism();
      options.refit_on_train_plus_valid = false;

      // One long run; the incumbent at each checkpoint reproduces the
      // paper's per-budget columns.
      Rng rng(args.seed ^ 0x9e3779b97f4a7c15ull);
      SplitResult split = TrainTestSplit(fb.train, 0.2, &rng);
      HoldoutEvaluator evaluator(split.train, split.test);
      evaluator.SetTestSet(fb.test);
      ConfigurationSpace config_space = BuildEmSearchSpace(space);
      Result<SearchOutcome> searched = [&]() -> Result<SearchOutcome> {
        if (algorithm == SearchAlgorithm::kSmac) {
          SmacOptions smac;
          smac.base.max_evaluations = args.evals;
          smac.base.seed = args.seed;
          return SmacSearch(config_space, &evaluator, smac);
        }
        SearchOptions ropts;
        ropts.max_evaluations = args.evals;
        ropts.seed = args.seed;
        return RandomSearch(config_space, &evaluator, ropts);
      }();
      if (!searched.ok()) {
        std::fprintf(stderr, "search failed: %s\n",
                     searched.status().ToString().c_str());
        std::exit(1);
      }
      SearchOutcome outcome = std::move(*searched);

      const char* label = space == ModelSpace::kAllModels
                              ? "all-model    "
                              : "random forest";
      std::printf("  %s  valid:", label);
      double best_valid = 0.0;
      double test_at_best = 0.0;
      size_t next_checkpoint = 0;
      std::vector<double> valid_row, test_row;
      for (size_t i = 0; i < outcome.trajectory.size(); ++i) {
        const EvalRecord& r = outcome.trajectory[i];
        if (r.valid_f1 > best_valid) {
          best_valid = r.valid_f1;
          test_at_best = r.test_f1;
        }
        while (next_checkpoint < std::size(kCheckpoints) &&
               static_cast<int>(i + 1) == kCheckpoints[next_checkpoint]) {
          valid_row.push_back(best_valid);
          test_row.push_back(test_at_best);
          ++next_checkpoint;
        }
      }
      while (valid_row.size() < std::size(kCheckpoints)) {
        valid_row.push_back(best_valid);
        test_row.push_back(test_at_best);
      }
      for (double v : valid_row) std::printf(" %5.1f", v * 100.0);
      std::printf("   test:");
      for (double v : test_row) std::printf(" %5.1f", v * 100.0);
      std::printf("\n");
      BenchCase c =
          DatasetCase("fig10_model_selection", profile.name, args);
      c.params["model_space"] = space == ModelSpace::kAllModels
                                    ? "all_models"
                                    : "random_forest_only";
      c.params["search"] =
          algorithm == SearchAlgorithm::kSmac ? "smac" : "random";
      for (size_t i = 0; i < std::size(kCheckpoints); ++i) {
        std::string ev = std::to_string(kCheckpoints[i]);
        c.counters["valid_f1_ev" + ev] = valid_row[i] * 100.0;
        c.counters["test_f1_ev" + ev] = test_row[i] * 100.0;
      }
      ReportBenchCase(std::move(c));
    }
  }

  std::printf(
      "\npaper shape: RF-only converges faster at small budgets; all-model "
      "catches up (sometimes passes) at the largest budgets.\n");
  return 0;
}
