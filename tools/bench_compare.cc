// bench_compare: noise-aware diff of standardized bench artifacts.
//
//   bench_compare [--check] [--noise=0.08] [--min-seconds=1e-6]
//                 [--json-out=verdict.json] BASELINE CURRENT [CURRENT...]
//   bench_compare --merge-out=baseline.json RUN1.json [RUN2.json ...]
//
// BASELINE and CURRENT accept either a single `--json-out` artifact or a
// directory of them (every *.json inside, e.g. `bench/baselines/`). Several
// CURRENT run files are min-merged per case before comparison (best-of-N),
// which is how the CI perf-gate runs each gated bench 5x and still gets a
// stable verdict out of a noisy runner.
//
// Verdicts per case: ok | improved | regressed | skipped (under
// --min-seconds) | missing_in_current | new. With --check the process exits
// 1 when any case regressed beyond the +/-noise band or a timed baseline
// case disappeared; 0 otherwise. Usage / IO / parse errors exit 2.
//
// --merge-out min-merges the given run files into one artifact in the
// standard schema — the recipe for (re)generating `bench/baselines/`.
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "io/atomic_file.h"
#include "tools/bench_compare_lib.h"

namespace autoem {
namespace tools {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare [--check] [--noise=F] [--min-seconds=S]\n"
      "                     [--json-out=F] BASELINE CURRENT [CURRENT...]\n"
      "       bench_compare --merge-out=F RUN1.json [RUN2.json ...]\n"
      "BASELINE/CURRENT: a --json-out artifact or a directory of them.\n");
  return 2;
}

/// A path argument expands to itself, or — for a directory — to every
/// *.json file inside, sorted for determinism.
bool ExpandPath(const std::string& path, std::vector<std::string>* out) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    out->push_back(path);  // plain file; open errors surface at load
    return true;
  }
  std::vector<std::string> found;
  while (dirent* entry = readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      found.push_back(path + "/" + name);
    }
  }
  closedir(dir);
  if (found.empty()) {
    std::fprintf(stderr, "bench_compare: no *.json files in %s\n",
                 path.c_str());
    return false;
  }
  std::sort(found.begin(), found.end());
  out->insert(out->end(), found.begin(), found.end());
  return true;
}

int Main(int argc, char** argv) {
  CompareOptions options;
  bool check = false;
  std::string json_out, merge_out;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--noise=", 0) == 0) {
      options.noise = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--min-seconds=", 0) == 0) {
      options.min_seconds = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else if (arg.rfind("--merge-out=", 0) == 0) {
      merge_out = arg.substr(12);
    } else if (arg == "--help" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (!merge_out.empty()) {
    if (positional.empty()) return Usage();
    std::vector<std::string> files;
    for (const std::string& p : positional) {
      if (!ExpandPath(p, &files)) return 2;
    }
    auto merged = LoadBenchFiles(files);
    if (!merged.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n",
                   merged.status().ToString().c_str());
      return 2;
    }
    Status st = io::AtomicWriteFile(merge_out, SerializeBenchFile(*merged));
    if (!st.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("merged %zu run file(s), %zu case(s) -> %s\n", files.size(),
                merged->cases.size(), merge_out.c_str());
    return 0;
  }

  if (positional.size() < 2) return Usage();
  std::vector<std::string> baseline_files, current_files;
  if (!ExpandPath(positional[0], &baseline_files)) return 2;
  for (size_t i = 1; i < positional.size(); ++i) {
    if (!ExpandPath(positional[i], &current_files)) return 2;
  }
  auto baseline = LoadBenchFiles(baseline_files);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_compare: baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto current = LoadBenchFiles(current_files);
  if (!current.ok()) {
    std::fprintf(stderr, "bench_compare: current: %s\n",
                 current.status().ToString().c_str());
    return 2;
  }
  // Cross-machine comparisons are valid to *run* (a local dev box checking
  // against CI baselines) but the verdict is advisory, so say so.
  auto meta = [](const BenchFile& f, const char* key) {
    auto it = f.meta.find(key);
    return it == f.meta.end() ? std::string("unknown") : it->second;
  };
  std::string base_cpu = meta(*baseline, "cpu_model");
  std::string cur_cpu = meta(*current, "cpu_model");
  if (base_cpu != cur_cpu) {
    std::fprintf(stderr,
                 "bench_compare: warning: cpu_model differs "
                 "(baseline: %s; current: %s) — ratios may reflect "
                 "hardware, not code\n",
                 base_cpu.c_str(), cur_cpu.c_str());
  }

  CompareReport report = CompareBench(*baseline, *current, options);
  std::fputs(CompareReportText(report).c_str(), stdout);
  if (!json_out.empty()) {
    Status st = io::AtomicWriteFile(json_out, CompareReportJson(report));
    if (!st.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  return (check && report.Failed()) ? 1 : 0;
}

}  // namespace
}  // namespace tools
}  // namespace autoem

int main(int argc, char** argv) { return autoem::tools::Main(argc, argv); }
