#include "tools/bench_compare_lib.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace autoem {
namespace tools {

namespace {

// ---- minimal JSON reader ---------------------------------------------------
// The artifacts are produced by our own writers, but CI must fail with a
// message — not UB — on a truncated upload, so this is a real (if small)
// recursive-descent parser over the full JSON grammar.

struct Json {
  enum Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::map<std::string, Json> object;
  std::vector<Json> array;

  const Json* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    Json value;
    AUTOEM_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = Json::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = Json::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = Json::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->type = Json::kNull;
      pos_ += 4;
      return Status::OK();
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = text_.c_str() + pos_;
      char* end = nullptr;
      out->number = std::strtod(start, &end);
      if (end == start) return Error("malformed number");
      out->type = Json::kNumber;
      pos_ += static_cast<size_t>(end - start);
      return Status::OK();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // Bench names are ASCII; encode the BMP scalar as UTF-8 so
          // nothing is silently dropped.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(Json* out, int depth) {
    Consume('{');
    out->type = Json::kObject;
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      std::string key;
      AUTOEM_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      AUTOEM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object[std::move(key)] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out, int depth) {
    Consume('[');
    out->type = Json::kArray;
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json value;
      AUTOEM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string JsonToString(const Json& v) {
  switch (v.type) {
    case Json::kString: return v.str;
    case Json::kNumber: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      return buf;
    }
    case Json::kBool: return v.boolean ? "true" : "false";
    default: return "";
  }
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Result<BenchFile> ParseBenchJson(const std::string& text) {
  auto parsed = JsonParser(text).Parse();
  if (!parsed.ok()) return parsed.status();
  const Json& root = *parsed;
  if (root.type != Json::kObject) {
    return Status::InvalidArgument("bench file: root is not an object");
  }
  BenchFile file;
  if (const Json* meta = root.Find("meta"); meta != nullptr) {
    for (const auto& [key, value] : meta->object) {
      file.meta[key] = JsonToString(value);
    }
  }
  const Json* cases = root.Find("cases");
  if (cases == nullptr || cases->type != Json::kArray) {
    return Status::InvalidArgument("bench file: missing \"cases\" array");
  }
  for (const Json& entry : cases->array) {
    const Json* name = entry.Find("name");
    if (name == nullptr || name->type != Json::kString) continue;
    BenchCaseStat stat;
    stat.name = name->str;
    if (const Json* secs = entry.Find("seconds");
        secs != nullptr && secs->type == Json::kNumber &&
        std::isfinite(secs->number) && secs->number > 0) {
      stat.seconds = secs->number;
    }
    stat.runs = 1;
    if (const Json* counters = entry.Find("counters"); counters != nullptr) {
      if (const Json* runs = counters->Find("bench_compare.runs");
          runs != nullptr && runs->type == Json::kNumber && runs->number >= 1) {
        stat.runs = static_cast<int>(runs->number);
      }
    }
    // Duplicate names within one file (google-benchmark repetitions)
    // min-merge the same way multiple files do.
    auto [it, inserted] = file.cases.emplace(stat.name, stat);
    if (!inserted) {
      BenchCaseStat& existing = it->second;
      if (stat.seconds > 0 &&
          (existing.seconds == 0 || stat.seconds < existing.seconds)) {
        existing.seconds = stat.seconds;
      }
      existing.runs += stat.runs;
    }
  }
  return file;
}

Result<BenchFile> LoadBenchFiles(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("no bench files given");
  }
  BenchFile merged;
  bool first = true;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    auto file = ParseBenchJson(buf.str());
    if (!file.ok()) {
      return Status::InvalidArgument(path + ": " +
                                     file.status().ToString());
    }
    if (first) {
      merged.meta = file->meta;
      first = false;
    }
    for (const auto& [name, stat] : file->cases) {
      auto [it, inserted] = merged.cases.emplace(name, stat);
      if (!inserted) {
        BenchCaseStat& existing = it->second;
        if (stat.seconds > 0 &&
            (existing.seconds == 0 || stat.seconds < existing.seconds)) {
          existing.seconds = stat.seconds;
        }
        existing.runs += stat.runs;
      }
    }
  }
  return merged;
}

std::string SerializeBenchFile(const BenchFile& file) {
  std::string out = "{\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : file.meta) {
    if (!first) out += ",";
    first = false;
    out += obs::JsonQuote(key);
    out += ":";
    out += AllDigits(value) ? value : obs::JsonQuote(value);
  }
  out += "},\"cases\":[";
  first = true;
  for (const auto& [name, stat] : file.cases) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":" + obs::JsonQuote(name) +
           ",\"params\":{},\"counters\":{\"bench_compare.runs\":" +
           std::to_string(stat.runs) +
           "},\"seconds\":" + obs::JsonNumber(stat.seconds) + "}";
  }
  out += "\n]}\n";
  return out;
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk: return "ok";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "regressed";
    case Verdict::kSkipped: return "skipped";
    case Verdict::kMissingInCurrent: return "missing_in_current";
    case Verdict::kNew: return "new";
  }
  return "unknown";
}

CompareReport CompareBench(const BenchFile& baseline, const BenchFile& current,
                           const CompareOptions& options) {
  CompareReport report;
  for (const auto& [name, base] : baseline.cases) {
    CaseComparison c;
    c.name = name;
    c.baseline_s = base.seconds;
    auto it = current.cases.find(name);
    if (it == current.cases.end()) {
      // A dimensionless baseline figure (seconds==0) that disappears is not
      // lost *timing* coverage; only timed cases gate.
      if (base.seconds < options.min_seconds) continue;
      c.verdict = Verdict::kMissingInCurrent;
      ++report.missing_in_current;
      report.cases.push_back(std::move(c));
      continue;
    }
    c.current_s = it->second.seconds;
    if (c.baseline_s < options.min_seconds ||
        c.current_s < options.min_seconds) {
      c.verdict = Verdict::kSkipped;
      ++report.skipped;
    } else {
      c.ratio = c.current_s / c.baseline_s;
      if (c.ratio > 1.0 + options.noise) {
        c.verdict = Verdict::kRegressed;
        ++report.regressed;
      } else if (c.ratio < 1.0 - options.noise) {
        c.verdict = Verdict::kImproved;
        ++report.improved;
      } else {
        c.verdict = Verdict::kOk;
        ++report.ok;
      }
    }
    report.cases.push_back(std::move(c));
  }
  for (const auto& [name, cur] : current.cases) {
    if (baseline.cases.count(name) != 0) continue;
    if (cur.seconds < options.min_seconds) continue;
    CaseComparison c;
    c.name = name;
    c.current_s = cur.seconds;
    c.verdict = Verdict::kNew;
    ++report.added;
    report.cases.push_back(std::move(c));
  }
  // Worst first: regressions and lost coverage top the log.
  std::sort(report.cases.begin(), report.cases.end(),
            [](const CaseComparison& a, const CaseComparison& b) {
              auto rank = [](const CaseComparison& c) {
                switch (c.verdict) {
                  case Verdict::kMissingInCurrent: return 0;
                  case Verdict::kRegressed: return 1;
                  case Verdict::kOk: return 2;
                  case Verdict::kImproved: return 3;
                  case Verdict::kNew: return 4;
                  case Verdict::kSkipped: return 5;
                }
                return 6;
              };
              if (rank(a) != rank(b)) return rank(a) < rank(b);
              if (a.ratio != b.ratio) return a.ratio > b.ratio;
              return a.name < b.name;
            });
  return report;
}

std::string CompareReportJson(const CompareReport& report) {
  std::string out = "{\"failed\":";
  out += report.Failed() ? "true" : "false";
  out += ",\"summary\":{\"ok\":" + std::to_string(report.ok) +
         ",\"improved\":" + std::to_string(report.improved) +
         ",\"regressed\":" + std::to_string(report.regressed) +
         ",\"skipped\":" + std::to_string(report.skipped) +
         ",\"missing_in_current\":" +
         std::to_string(report.missing_in_current) +
         ",\"new\":" + std::to_string(report.added) + "},\"cases\":[";
  for (size_t i = 0; i < report.cases.size(); ++i) {
    const CaseComparison& c = report.cases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\":" + obs::JsonQuote(c.name) +
           ",\"verdict\":\"" + VerdictName(c.verdict) +
           "\",\"baseline_s\":" + obs::JsonNumber(c.baseline_s) +
           ",\"current_s\":" + obs::JsonNumber(c.current_s) +
           ",\"ratio\":" + obs::JsonNumber(c.ratio) + "}";
  }
  out += "\n]}\n";
  return out;
}

std::string CompareReportText(const CompareReport& report) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-52s %12s %12s %8s  %s\n", "case",
                "baseline", "current", "ratio", "verdict");
  out += line;
  for (const CaseComparison& c : report.cases) {
    if (c.verdict == Verdict::kSkipped) continue;
    std::snprintf(line, sizeof(line), "%-52s %11.6fs %11.6fs %8.3f  %s\n",
                  c.name.c_str(), c.baseline_s, c.current_s, c.ratio,
                  VerdictName(c.verdict));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%d ok, %d improved, %d regressed, %d missing, %d new, "
                "%d skipped -> %s\n",
                report.ok, report.improved, report.regressed,
                report.missing_in_current, report.added, report.skipped,
                report.Failed() ? "FAIL" : "PASS");
  out += line;
  return out;
}

}  // namespace tools
}  // namespace autoem
