#ifndef AUTOEM_TOOLS_BENCH_COMPARE_LIB_H_
#define AUTOEM_TOOLS_BENCH_COMPARE_LIB_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace autoem {
namespace tools {

/// Noise-aware comparison of standardized bench artifacts (`--json-out=`
/// files in the `{"meta":{...},"cases":[{name,params,counters,seconds}]}`
/// schema) against checked-in baselines — the engine behind the
/// `bench_compare` binary and the CI perf-gate job.
///
/// Timing noise is handled twice: multiple run files for the same side are
/// merged by taking the per-case *minimum* seconds (the classic best-of-N
/// estimator — the min is the run least disturbed by the machine), and the
/// remaining ratio is judged against a symmetric `noise` band (default
/// ±8%). Cases faster than `min_seconds` are skipped outright: a 40 ns
/// guard bench can swing 2x on timer granularity alone and belongs to a
/// micro-bench, not a gate.

/// One case after min-merging: best observed seconds across runs.
struct BenchCaseStat {
  std::string name;
  double seconds = 0.0;  // min across runs; 0 = dimensionless figure
  int runs = 0;          // how many run files contributed
};

/// One parsed (and possibly merged) bench artifact.
struct BenchFile {
  std::map<std::string, std::string> meta;  // git_sha / cpu_model / threads
  std::map<std::string, BenchCaseStat> cases;
};

/// Parses one `--json-out` artifact. Tolerant of the google-benchmark tee
/// cases and paper-figure cases alike: anything with a "name" is a case;
/// missing "seconds" reads as 0.
Result<BenchFile> ParseBenchJson(const std::string& text);

/// Loads and min-merges several run files into one BenchFile (meta is taken
/// from the first file; a per-case `runs` counts contributions).
Result<BenchFile> LoadBenchFiles(const std::vector<std::string>& paths);

/// Serializes a merged BenchFile back into the standard artifact schema, so
/// `--merge-out` baselines are readable by every BENCH_*.json consumer
/// (including this library). Adds a `"bench_compare.runs"` counter per case.
std::string SerializeBenchFile(const BenchFile& file);

enum class Verdict {
  kOk,        // within the noise band
  kImproved,  // faster than baseline beyond noise
  kRegressed, // slower than baseline beyond noise
  kSkipped,   // under min_seconds on either side — too fast to judge
  kMissingInCurrent,  // case in baseline but not in current (lost coverage)
  kNew,       // case in current but not in baseline (no verdict possible)
};

const char* VerdictName(Verdict verdict);

struct CaseComparison {
  std::string name;
  double baseline_s = 0.0;
  double current_s = 0.0;
  double ratio = 0.0;  // current/baseline; 0 when either side is absent
  Verdict verdict = Verdict::kOk;
};

struct CompareOptions {
  /// Symmetric relative noise band: |ratio - 1| <= noise is "ok".
  double noise = 0.08;
  /// Cases with seconds below this on either side are kSkipped.
  double min_seconds = 1e-6;
};

struct CompareReport {
  std::vector<CaseComparison> cases;  // sorted: worst ratio first
  int ok = 0, improved = 0, regressed = 0, skipped = 0;
  int missing_in_current = 0, added = 0;

  /// What `--check` gates on: a regression, or baseline coverage silently
  /// lost (a gated bench that stopped reporting must fail loudly too).
  bool Failed() const { return regressed > 0 || missing_in_current > 0; }
};

CompareReport CompareBench(const BenchFile& baseline, const BenchFile& current,
                           const CompareOptions& options);

/// Machine-readable verdict: `{"failed":bool,"summary":{...},"cases":[...]}`.
std::string CompareReportJson(const CompareReport& report);

/// Human-readable table for the terminal / CI log.
std::string CompareReportText(const CompareReport& report);

}  // namespace tools
}  // namespace autoem

#endif  // AUTOEM_TOOLS_BENCH_COMPARE_LIB_H_
